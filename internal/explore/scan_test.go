package explore

import (
	"errors"
	"testing"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// scanLog records everything a Scan reports.
type scanLog struct {
	visits    []uint64
	edges     [][3]uint64 // from, to, action
	fresh     []bool
	deadlocks []uint64
}

func runScan(t *testing.T, p *guarded.Program, init state.Predicate, opts ScanOptions) (ScanStats, *scanLog) {
	t.Helper()
	log := &scanLog{}
	stats, err := Scan(p, init, opts, Scanner{
		Visit: func(s state.State) bool {
			log.visits = append(log.visits, s.Index())
			return true
		},
		Edge: func(from, to state.State, action int, fresh bool) bool {
			log.edges = append(log.edges, [3]uint64{from.Index(), to.Index(), uint64(action)})
			log.fresh = append(log.fresh, fresh)
			return true
		},
		Deadlock: func(s state.State) bool {
			log.deadlocks = append(log.deadlocks, s.Index())
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats, log
}

// TestScanMatchesBuild checks the streaming sweep discovers exactly the
// states, transitions, and deadlocks of the assembled graph.
func TestScanMatchesBuild(t *testing.T) {
	cases := []struct {
		name string
		prog *guarded.Program
		init state.Predicate
	}{
		{"chain", counter(t, 9, inc(9)), state.True},
		{"cycle", counter(t, 7, cycle(7)), state.True},
		{"chain/from-2", counter(t, 9, inc(9)),
			state.Pred("x ge 2", func(s state.State) bool { return s.Get(0) >= 2 })},
		{"two-actions", counter(t, 6, inc(6), cycle(6)), state.True},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := Build(tc.prog, tc.init, Options{})
			if err != nil {
				t.Fatal(err)
			}
			stats, log := runScan(t, tc.prog, tc.init, ScanOptions{})
			if stats.States != g.NumNodes() || len(log.visits) != g.NumNodes() {
				t.Errorf("scan visited %d states, graph has %d", stats.States, g.NumNodes())
			}
			if stats.Edges != g.NumEdges() || len(log.edges) != g.NumEdges() {
				t.Errorf("scan saw %d edges, graph has %d", stats.Edges, g.NumEdges())
			}
			for _, idx := range log.visits {
				if _, ok := g.idOf(idx); !ok {
					t.Errorf("scan visited state %d the graph does not contain", idx)
				}
			}
			// Every scanned edge is a graph edge.
			for _, e := range log.edges {
				from, ok := g.idOf(e[0])
				if !ok {
					t.Fatalf("edge source %d not in graph", e[0])
				}
				found := false
				for _, ge := range g.Out(from) {
					if g.idxs[ge.To] == e[1] && uint64(ge.Action) == e[2] {
						found = true
						break
					}
				}
				if !found {
					t.Errorf("scan edge %d -[%d]-> %d not in graph", e[0], e[2], e[1])
				}
			}
			// Deadlocks agree.
			wantDead := map[uint64]bool{}
			g.DeadlockSet().ForEach(func(id int) bool {
				wantDead[g.idxs[id]] = true
				return true
			})
			if len(log.deadlocks) != len(wantDead) {
				t.Errorf("scan found %d deadlocks, graph has %d", len(log.deadlocks), len(wantDead))
			}
			for _, idx := range log.deadlocks {
				if !wantDead[idx] {
					t.Errorf("scan deadlock %d not deadlocked in graph", idx)
				}
			}
		})
	}
}

func TestScanInitOnly(t *testing.T) {
	p := counter(t, 9, inc(9))
	from := state.Pred("x ge 6", func(s state.State) bool { return s.Get(0) >= 6 })
	stats, log := runScan(t, p, from, ScanOptions{InitOnly: true})
	// States 6, 7, 8 in ascending order; edges 6->7, 7->8 (8 is deadlocked);
	// no successor closure, so nothing beyond the init states is visited.
	if stats.States != 3 {
		t.Errorf("states = %d, want 3", stats.States)
	}
	if want := []uint64{6, 7, 8}; len(log.visits) != 3 || log.visits[0] != want[0] ||
		log.visits[1] != want[1] || log.visits[2] != want[2] {
		t.Errorf("visits = %v, want %v", log.visits, want)
	}
	if stats.Edges != 2 {
		t.Errorf("edges = %d, want 2", stats.Edges)
	}
	for _, fresh := range log.fresh {
		if fresh {
			t.Error("InitOnly mode never claims discoveries")
		}
	}
}

func TestScanEarlyExitStops(t *testing.T) {
	p := counter(t, 100, inc(100))
	visited := 0
	stats, err := Scan(p, state.True, ScanOptions{}, Scanner{
		Visit: func(s state.State) bool {
			visited++
			return s.Index() != 4 // stop at the fifth state
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Stopped {
		t.Error("Stopped must report the early exit")
	}
	if visited != 5 || stats.States != 5 {
		t.Errorf("visited %d states (stats %d), want 5", visited, stats.States)
	}
}

func TestScanMaxStates(t *testing.T) {
	p := counter(t, 10, inc(10))
	_, err := Scan(p, state.True, ScanOptions{MaxStates: 4}, Scanner{})
	if !errors.Is(err, ErrStateBound) {
		t.Errorf("want ErrStateBound, got %v", err)
	}
	// The bound is exact: a scan of exactly MaxStates states succeeds.
	stats, err := Scan(p, state.True, ScanOptions{MaxStates: 10}, Scanner{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.States != 10 {
		t.Errorf("states = %d, want 10", stats.States)
	}
}

func TestScanFairnessAffectsDeadlock(t *testing.T) {
	// One action, marked unfair: with no fair action ever enabled, every
	// state reports as deadlocked (the p ‖ F maximality rule).
	p := counter(t, 4, inc(4))
	_, log := runScan(t, p, state.True, ScanOptions{Fair: []bool{false}})
	if len(log.deadlocks) != 4 {
		t.Errorf("deadlocks = %d, want 4 (unfair actions don't count)", len(log.deadlocks))
	}
	_, log = runScan(t, p, state.True, ScanOptions{})
	if len(log.deadlocks) != 1 {
		t.Errorf("deadlocks = %v, want just the top state", log.deadlocks)
	}
}

func TestFindDeadlockWitnessMatchesGraphPath(t *testing.T) {
	cases := []struct {
		name string
		prog *guarded.Program
		init state.Predicate
	}{
		{"chain", counter(t, 9, inc(9)), state.True},
		{"chain/from-3", counter(t, 9, inc(9)),
			state.Pred("x ge 3", func(s state.State) bool { return s.Get(0) >= 3 })},
		{"two-actions", counter(t, 6, inc(6), cycle(6)), state.True},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace, found, err := FindDeadlock(tc.prog, tc.init, ScanOptions{})
			if err != nil {
				t.Fatal(err)
			}
			g, err := Build(tc.prog, tc.init, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, wantFound := g.PathBetween(g.SetOf(tc.init), g.DeadlockSet(), nil)
			if found != wantFound {
				t.Fatalf("found = %v, graph says %v", found, wantFound)
			}
			if !found {
				return
			}
			if len(trace) != len(want) {
				t.Fatalf("trace length %d, graph path length %d", len(trace), len(want))
			}
			for i := range trace {
				if !trace[i].Equal(want[i]) {
					t.Errorf("trace[%d] = %s, graph path has %s", i, trace[i], want[i])
				}
			}
		})
	}
}

func TestFindDeadlockNone(t *testing.T) {
	p := counter(t, 5, cycle(5))
	trace, found, err := FindDeadlock(p, state.True, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if found || trace != nil {
		t.Errorf("cycle has no deadlock, got trace %v", trace)
	}
}
