package explore

import (
	"fmt"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Edge is a transition to node To produced by the action with index Action
// in the source program.
type Edge struct {
	Action int
	To     int
}

// Graph is an explicit-state transition system for a program: the nodes are
// the states reachable from an initial predicate (or the entire state
// space), and the labeled edges are the program's transitions.
type Graph struct {
	prog    *guarded.Program
	states  []state.State
	ids     map[uint64]int
	out     [][]Edge
	in      [][]Edge
	fair    []bool // fair[a]: action a is subject to weak fairness and counts for maximality
	numActs int
}

// Options configure graph construction.
type Options struct {
	// Fair marks which actions are program actions (weakly fair, counted
	// for maximality). nil means all actions are fair. Fault actions of a
	// p ‖ F composition must be marked unfair: computations are only
	// p-fair and p-maximal (Section 2.3).
	Fair []bool
	// MaxStates bounds the number of explored states; 0 means no bound
	// beyond the schema's own limit. The bound is exact: Build fails with
	// ErrStateBound if and only if the number of distinct reachable states
	// exceeds MaxStates, and a failed Build records nothing.
	MaxStates int
	// Parallelism selects the exploration engine: 1 (or any negative
	// value) runs the sequential engine, N > 1 expands the frontier with
	// an N-worker pool, and 0 defers to the process-wide default (see
	// SetDefaultParallelism; sequential unless raised). Both engines
	// produce identical graphs: node ids are canonically renumbered by
	// state index, so the result does not depend on worker count or
	// schedule.
	Parallelism int
}

// ErrStateBound is returned when exploration exceeds Options.MaxStates.
var ErrStateBound = fmt.Errorf("explore: state bound exceeded")

// Build explores the program from every state satisfying init and returns
// the induced transition graph. With init == state.True the graph covers the
// entire (finite) state space, which is what checks quantified over all
// states — such as invariant closure — require.
//
// Node ids are canonical: they ascend with the states' mixed-radix indices
// (state.State.Index), so the graph is identical — same states, ids, edges,
// and in-lists — whichever engine built it and however its workers were
// scheduled. See Options.Parallelism.
func Build(p *guarded.Program, init state.Predicate, opts Options) (*Graph, error) {
	if err := p.Schema().Indexable(); err != nil {
		return nil, err
	}
	fair := opts.Fair
	if fair == nil {
		fair = make([]bool, p.NumActions())
		for i := range fair {
			fair[i] = true
		}
	}
	if len(fair) != p.NumActions() {
		return nil, fmt.Errorf("explore: fairness mask has %d entries for %d actions", len(fair), p.NumActions())
	}
	var (
		nodes []rawNode
		err   error
	)
	if w := opts.workers(); w > 1 {
		nodes, err = exploreParallel(p, init, opts.MaxStates, w)
	} else {
		nodes, err = exploreSeq(p, init, opts.MaxStates)
	}
	if err != nil {
		return nil, err
	}
	return assemble(p, append([]bool(nil), fair...), nodes), nil
}

func (g *Graph) buildIn() {
	g.in = make([][]Edge, len(g.states))
	for from, edges := range g.out {
		for _, e := range edges {
			g.in[e.To] = append(g.in[e.To], Edge{Action: e.Action, To: from})
		}
	}
}

// Program returns the program the graph was built from.
func (g *Graph) Program() *guarded.Program { return g.prog }

// NumNodes returns the number of explored states.
func (g *Graph) NumNodes() int { return len(g.states) }

// NumEdges returns the number of transitions.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

// State returns the state of node id.
func (g *Graph) State(id int) state.State { return g.states[id] }

// NodeOf returns the node id of a state, if it was explored.
func (g *Graph) NodeOf(s state.State) (int, bool) {
	id, ok := g.ids[s.Index()]
	return id, ok
}

// Out returns the outgoing edges of node id. The returned slice must not be
// modified.
func (g *Graph) Out(id int) []Edge { return g.out[id] }

// In returns the incoming edges of node id (Edge.To holds the source). The
// returned slice must not be modified.
func (g *Graph) In(id int) []Edge { return g.in[id] }

// FairAction reports whether action a is subject to weak fairness.
func (g *Graph) FairAction(a int) bool { return g.fair[a] }

// ActionName returns the name of action a in the source program.
func (g *Graph) ActionName(a int) string { return g.prog.Action(a).Name }

// SetOf returns the node set satisfying the predicate.
func (g *Graph) SetOf(p state.Predicate) *Bitset {
	b := NewBitset(len(g.states))
	for id, s := range g.states {
		if p.Holds(s) {
			b.Add(id)
		}
	}
	return b
}

// All returns the set of all nodes.
func (g *Graph) All() *Bitset {
	b := NewBitset(len(g.states))
	for id := range g.states {
		b.Add(id)
	}
	return b
}

// Deadlocked reports whether node id has no enabled fair (program) action.
// Unfair actions (faults) do not rescue a deadlock: maximality is
// p-maximality (Section 2.3).
func (g *Graph) Deadlocked(id int) bool {
	s := g.states[id]
	for a := 0; a < g.numActs; a++ {
		if g.fair[a] && g.prog.Action(a).Enabled(s) {
			return false
		}
	}
	return true
}

// Enabled reports whether action a is enabled at node id.
func (g *Graph) Enabled(id, a int) bool {
	return g.prog.Action(a).Enabled(g.states[id])
}

// Reach returns the set of nodes reachable from `from` (inclusive) along
// edges whose source and target stay inside `within`; pass nil for within to
// allow all nodes. Only edges from nodes inside within are followed.
func (g *Graph) Reach(from *Bitset, within *Bitset) *Bitset {
	seen := NewBitset(len(g.states))
	var stack []int
	from.ForEach(func(id int) bool {
		if within == nil || within.Has(id) {
			if !seen.Has(id) {
				seen.Add(id)
				stack = append(stack, id)
			}
		}
		return true
	})
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[id] {
			if within != nil && !within.Has(e.To) {
				continue
			}
			if !seen.Has(e.To) {
				seen.Add(e.To)
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// PathBetween returns a state path (BFS, shortest) from any node in `from`
// to any node in `goal`, moving only through `within` (nil = all). It
// reports false when no such path exists.
func (g *Graph) PathBetween(from, goal *Bitset, within *Bitset) ([]state.State, bool) {
	parent := make([]int, len(g.states))
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	var queue []int
	from.ForEach(func(id int) bool {
		if within == nil || within.Has(id) {
			parent[id] = -1
			queue = append(queue, id)
		}
		return true
	})
	target := -1
	for i := 0; i < len(queue) && target < 0; i++ {
		id := queue[i]
		if goal.Has(id) {
			target = id
			break
		}
		for _, e := range g.out[id] {
			if within != nil && !within.Has(e.To) {
				continue
			}
			if parent[e.To] == -2 {
				parent[e.To] = id
				queue = append(queue, e.To)
			}
		}
	}
	if target < 0 {
		return nil, false
	}
	var rev []state.State
	for id := target; id != -1; id = parent[id] {
		rev = append(rev, g.states[id])
	}
	// Reverse into forward order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}
