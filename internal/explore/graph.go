package explore

import (
	"context"
	"fmt"
	"sync"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// The sequential engine below assembles the Graph arenas in place; this
// file is a sanctioned builder.
//
//dc:mutates Graph

// Edge is a transition to node To produced by the action with index Action
// in the source program.
type Edge struct {
	Action int
	To     int
}

// Graph is an explicit-state transition system for a program: the nodes are
// the states reachable from an initial predicate (or the entire state
// space), and the labeled edges are the program's transitions.
//
// The representation is compressed sparse row (CSR) throughout. States live
// in one flat arena of n×nv int32 values decoded lazily into state.State
// views; out- and in-edges are flat slices indexed by per-node offset
// arrays; and per-action enabledness is precomputed into bitsets during
// assembly, so Deadlocked, the fairness engine, and the SCC passes never
// re-evaluate guards.
//
// Graphs are write-once: after assembly they are shared across the cache,
// across goroutines, and across memoized derived artifacts, so field
// writes are confined to the //dc:mutates builder files (the dcvet
// graphmut analyzer enforces it).
//
//dc:immutable
type Graph struct {
	prog   *guarded.Program
	schema *state.Schema
	nv     int // variables per state
	n      int // number of nodes

	vals []int32  // state arena: node id i occupies vals[i*nv : (i+1)*nv]
	idxs []uint64 // mixed-radix index per node, ascending (the id order)

	outOff   []uint32 // n+1 offsets into outEdges
	outEdges []Edge
	inOff    []uint32 // n+1 offsets into inEdges
	inEdges  []Edge

	fair    []bool // fair[a]: action a is subject to weak fairness and counts for maximality
	numActs int

	enabled []*Bitset // enabled[a]: nodes where action a's guard holds
	dead    *Bitset   // nodes with no enabled fair action

	// memo caches derived artifacts (predicate bitsets, reachability,
	// liveness verdicts, fair SCCs) so repeated obligations on one graph
	// stop recomputing them. A pointer so that filtered views — which are
	// shallow copies with different edges or fairness — can swap in a fresh
	// one without racing the parent. nil disables memoization.
	memo *graphMemo
}

// Options configure graph construction. Every field that influences the
// built graph must be consulted by sharedKeyOf (the graph-cache key
// builder) or carry a //dc:nokey exemption; the dcvet cachekey analyzer
// enforces the invariant.
//
//dc:cachekey inputs
type Options struct {
	// Fair marks which actions are program actions (weakly fair, counted
	// for maximality). nil means all actions are fair. Fault actions of a
	// p ‖ F composition must be marked unfair: computations are only
	// p-fair and p-maximal (Section 2.3).
	Fair []bool
	// MaxStates bounds the number of explored states; 0 means no bound
	// beyond the schema's own limit. The bound is exact: Build fails with
	// ErrStateBound if and only if the number of distinct reachable states
	// exceeds MaxStates, and a failed Build records nothing.
	MaxStates int
	// Parallelism selects the exploration engine: 1 (or any negative
	// value) runs the sequential engine, N > 1 expands the frontier with
	// an N-worker pool, and 0 defers to the process-wide default (see
	// SetDefaultParallelism; sequential unless raised). Both engines
	// produce identical graphs: node ids are canonically renumbered by
	// state index, so the result does not depend on worker count or
	// schedule.
	//
	//dc:nokey graphs are canonical — byte-identical at any worker count
	Parallelism int
	// MemBudget selects the out-of-core engine: a positive byte budget
	// bounds the exploration's resident set, spilling the visited set and
	// the BFS frontier to disk past it (see DESIGN §3h). 0 defers to the
	// process-wide default (SetDefaultSpill; off unless raised); negative
	// forces the in-RAM engines even when a default is set. The budget
	// covers the engine's working structures, not the CSR arenas of the
	// returned graph — verdicts over super-RAM systems stream through Scan
	// and FindDeadlock instead of Build.
	//
	//dc:nokey graphs are canonical — byte-identical spilled or in-RAM
	MemBudget int64
	// SpillDir is the parent directory for spill files; "" means the OS
	// temp directory (or the SetDefaultSpill directory when the budget
	// came from the process default). Each exploration works in a private
	// subdirectory removed when it finishes.
	//
	//dc:nokey spill placement cannot change the built graph
	SpillDir string
	// Partitions is the visited-set partition count of the out-of-core
	// engine; 0 means a default sized for wide worker pools. Partitions
	// are assigned to workers by ownership, so the count also caps the
	// effective spilled parallelism.
	//
	//dc:nokey graphs are canonical — byte-identical at any partition count
	Partitions int
}

// ErrStateBound is returned when exploration exceeds Options.MaxStates.
var ErrStateBound = fmt.Errorf("explore: state bound exceeded")

// Build explores the program from every state satisfying init and returns
// the induced transition graph. With init == state.True the graph covers the
// entire (finite) state space, which is what checks quantified over all
// states — such as invariant closure — require.
//
// Node ids are canonical: they ascend with the states' mixed-radix indices
// (state.State.Index), so the graph is identical — same states, ids, edges,
// and in-lists — whichever engine built it and however its workers were
// scheduled. See Options.Parallelism.
//
// Successor generation runs on the compiled transition kernel
// (guarded.Compile): GCL-compiled actions execute native bytecode, all
// others go through the kernel's closure adapter. Both produce exactly the
// transitions Program.Successors would.
func Build(p *guarded.Program, init state.Predicate, opts Options) (*Graph, error) {
	return BuildCtx(context.Background(), p, init, opts)
}

// BuildCtx is Build under a context: cancellation aborts the exploration
// with ctx.Err() instead of running the state space to completion. Both
// engines poll the context at expansion granularity (every discovered state
// costs at least one kernel call, so an abandoned build stops within a few
// hundred expansions), which keeps the zero-allocation hot path intact.
// A cancelled build returns no graph and records nothing.
func BuildCtx(ctx context.Context, p *guarded.Program, init state.Predicate, opts Options) (*Graph, error) {
	buildCount.Add(1)
	if err := p.Schema().Indexable(); err != nil {
		return nil, err
	}
	fair := opts.Fair
	if fair == nil {
		fair = make([]bool, p.NumActions())
		for i := range fair {
			fair[i] = true
		}
	}
	if len(fair) != p.NumActions() {
		return nil, fmt.Errorf("explore: fairness mask has %d entries for %d actions", len(fair), p.NumActions())
	}
	k := sharedKernel(p)
	var (
		exps []expansion
		err  error
	)
	if cfg, ok := resolveSpill(opts.MemBudget, opts.SpillDir, opts.Partitions); ok {
		exps, err = exploreSpill(ctx, k, init, opts.MaxStates, opts.workers(), cfg)
	} else if w := opts.workers(); w > 1 {
		exps, err = exploreParallel(ctx, k, init, opts.MaxStates, w)
	} else {
		exps, err = exploreSeq(ctx, k, init, opts.MaxStates)
	}
	if err != nil {
		return nil, err
	}
	return assemble(k, append([]bool(nil), fair...), exps), nil
}

// buildIn constructs the in-edge CSR with a counting pass. Iterating sources
// in ascending id order makes each in-list ordered by source id (and, within
// one source, by out-edge position), exactly as the previous per-edge append
// construction did — the determinism contract covers in-lists too.
func (g *Graph) buildIn() {
	counts := make([]uint32, g.n+1)
	for i := range g.outEdges {
		counts[g.outEdges[i].To+1]++
	}
	for i := 0; i < g.n; i++ {
		counts[i+1] += counts[i]
	}
	g.inOff = counts
	g.inEdges = make([]Edge, len(g.outEdges))
	cursor := make([]uint32, g.n)
	copy(cursor, g.inOff[:g.n])
	for v := 0; v < g.n; v++ {
		for _, e := range g.Out(v) {
			g.inEdges[cursor[e.To]] = Edge{Action: e.Action, To: v}
			cursor[e.To]++
		}
	}
}

// Program returns the program the graph was built from.
func (g *Graph) Program() *guarded.Program { return g.prog }

// NumNodes returns the number of explored states.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the number of transitions.
func (g *Graph) NumEdges() int { return len(g.outEdges) }

// State returns the state of node id as a view into the graph's state arena
// (no copy). The view is immutable through the state API; callers must not
// write to slices derived from it.
func (g *Graph) State(id int) state.State {
	row := g.vals[id*g.nv : (id+1)*g.nv : (id+1)*g.nv]
	return g.schema.ViewState(row)
}

// idOf resolves a mixed-radix state index to its node id by binary search
// over the ascending idxs array.
func (g *Graph) idOf(idx uint64) (int, bool) {
	lo, hi := 0, g.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if g.idxs[mid] < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < g.n && g.idxs[lo] == idx {
		return lo, true
	}
	return 0, false
}

// NodeOf returns the node id of a state, if it was explored.
func (g *Graph) NodeOf(s state.State) (int, bool) {
	return g.idOf(s.Index())
}

// Out returns the outgoing edges of node id. The returned slice must not be
// modified.
func (g *Graph) Out(id int) []Edge { return g.outEdges[g.outOff[id]:g.outOff[id+1]] }

// In returns the incoming edges of node id (Edge.To holds the source). The
// returned slice must not be modified.
func (g *Graph) In(id int) []Edge { return g.inEdges[g.inOff[id]:g.inOff[id+1]] }

// FairAction reports whether action a is subject to weak fairness.
func (g *Graph) FairAction(a int) bool { return g.fair[a] }

// ActionName returns the name of action a in the source program.
func (g *Graph) ActionName(a int) string { return g.prog.Action(a).Name }

// SetOf returns the node set satisfying the predicate. Results for named
// predicates are memoized per graph (see memoizablePredName for the naming
// contract); the returned set is always the caller's to mutate.
func (g *Graph) SetOf(p state.Predicate) *Bitset {
	if b, ok := g.memoSetOf(p); ok {
		return b
	}
	return g.computeSetOf(p)
}

func (g *Graph) computeSetOf(p state.Predicate) *Bitset {
	b := NewBitset(g.n)
	for id := 0; id < g.n; id++ {
		if p.Holds(g.State(id)) {
			b.Add(id)
		}
	}
	return b
}

// All returns the set of all nodes.
func (g *Graph) All() *Bitset {
	b := NewBitset(g.n)
	b.Fill()
	return b
}

// Deadlocked reports whether node id has no enabled fair (program) action.
// Unfair actions (faults) do not rescue a deadlock: maximality is
// p-maximality (Section 2.3). The answer comes from the deadlock bitset
// precomputed during assembly.
func (g *Graph) Deadlocked(id int) bool { return g.dead.Has(id) }

// DeadlockSet returns the set of deadlocked nodes. The returned set is the
// graph's own precomputed bitset; callers must not modify it.
func (g *Graph) DeadlockSet() *Bitset { return g.dead }

// Enabled reports whether action a is enabled at node id (precomputed).
func (g *Graph) Enabled(id, a int) bool { return g.enabled[a].Has(id) }

// EnabledSet returns the set of nodes where action a is enabled. The
// returned set is the graph's own precomputed bitset; callers must not
// modify it.
func (g *Graph) EnabledSet(a int) *Bitset { return g.enabled[a] }

// Reach returns the set of nodes reachable from `from` (inclusive) along
// edges whose source and target stay inside `within`; pass nil for within to
// allow all nodes. Only edges from nodes inside within are followed.
// Unrestricted queries (within == nil) are memoized per graph — checkers
// repeat them with the same start set — and the returned set is always the
// caller's to mutate.
func (g *Graph) Reach(from *Bitset, within *Bitset) *Bitset {
	if within == nil && g.memo != nil {
		return g.memoReach(from)
	}
	return g.computeReach(from, within)
}

func (g *Graph) computeReach(from *Bitset, within *Bitset) *Bitset {
	seen := NewBitset(g.n)
	var stack []int
	from.ForEach(func(id int) bool {
		if within == nil || within.Has(id) {
			if !seen.Has(id) {
				seen.Add(id)
				stack = append(stack, id)
			}
		}
		return true
	})
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.Out(id) {
			if within != nil && !within.Has(e.To) {
				continue
			}
			if !seen.Has(e.To) {
				seen.Add(e.To)
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// parentPool recycles the BFS parent arrays of PathBetween: counterexample
// extraction is called repeatedly during checks, and the array is sized to
// the whole graph regardless of how small the searched region is.
var parentPool = sync.Pool{New: func() any { return new([]int) }}

// PathBetween returns a state path (BFS, shortest) from any node in `from`
// to any node in `goal`, moving only through `within` (nil = all). It
// reports false when no such path exists. An empty (or fully out-of-within)
// `from` returns early without allocating; a goal node inside `from` yields
// a single-state path.
func (g *Graph) PathBetween(from, goal *Bitset, within *Bitset) ([]state.State, bool) {
	var queue []int
	from.ForEach(func(id int) bool {
		if within == nil || within.Has(id) {
			queue = append(queue, id)
		}
		return true
	})
	if len(queue) == 0 {
		return nil, false
	}
	pp := parentPool.Get().(*[]int)
	defer parentPool.Put(pp)
	if cap(*pp) < g.n {
		*pp = make([]int, g.n)
	}
	parent := (*pp)[:g.n]
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	for _, id := range queue {
		parent[id] = -1
	}
	target := -1
	for i := 0; i < len(queue) && target < 0; i++ {
		id := queue[i]
		if goal.Has(id) {
			target = id
			break
		}
		for _, e := range g.Out(id) {
			if within != nil && !within.Has(e.To) {
				continue
			}
			if parent[e.To] == -2 {
				parent[e.To] = id
				queue = append(queue, e.To)
			}
		}
	}
	if target < 0 {
		return nil, false
	}
	var rev []state.State
	for id := target; id != -1; id = parent[id] {
		rev = append(rev, g.State(id))
	}
	// Reverse into forward order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true
}

// csrFromLists converts adjacency lists into CSR offset/edge arrays. Tests
// and edge filters use it; Build assembles its CSR directly from the
// engines' flat arenas.
func csrFromLists(out [][]Edge) ([]uint32, []Edge) {
	n := len(out)
	off := make([]uint32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		total += len(out[v])
		off[v+1] = uint32(total)
	}
	edges := make([]Edge, 0, total)
	for v := 0; v < n; v++ {
		edges = append(edges, out[v]...)
	}
	return off, edges
}

// newAdjacencyGraph builds a bare structural graph (no program, schema, or
// states) from explicit adjacency lists; property tests use it to exercise
// the graph algorithms on arbitrary shapes. Every action is enabled
// everywhere and nothing is deadlocked.
func newAdjacencyGraph(out [][]Edge, fair []bool) *Graph {
	g := &Graph{n: len(out), fair: fair, numActs: len(fair), memo: newGraphMemo()}
	g.outOff, g.outEdges = csrFromLists(out)
	g.buildIn()
	g.enabled = make([]*Bitset, g.numActs)
	for a := range g.enabled {
		g.enabled[a] = NewBitset(g.n)
		g.enabled[a].Fill()
	}
	g.dead = NewBitset(g.n)
	return g
}
