package explore

// SCCs computes the strongly connected components of the subgraph induced by
// `within` (nil = all nodes), using an iterative Tarjan algorithm so deep
// graphs do not overflow the goroutine stack. Components are returned in
// reverse topological order (Tarjan's natural output order).
func (g *Graph) SCCs(within *Bitset) [][]int {
	n := g.n
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		counter int
		stack   []int
		comps   [][]int
	)
	inSub := func(id int) bool { return within == nil || within.Has(id) }

	type frame struct {
		node int
		edge int
	}
	for root := 0; root < n; root++ {
		if !inSub(root) || index[root] != unvisited {
			continue
		}
		work := []frame{{node: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.node
			if f.edge == 0 {
				index[v] = counter
				low[v] = counter
				counter++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			out := g.Out(v)
			for f.edge < len(out) {
				e := out[f.edge]
				f.edge++
				w := e.To
				if !inSub(w) {
					continue
				}
				if index[w] == unvisited {
					work = append(work, frame{node: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// All edges of v processed: pop.
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].node
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
		}
	}
	return comps
}

// hasInternalEdge reports whether the component (given as a membership set)
// has at least one edge between its members. Trivial single-node components
// without self-loops admit no infinite run.
func (g *Graph) hasInternalEdge(member *Bitset, comp []int) bool {
	for _, v := range comp {
		for _, e := range g.Out(v) {
			if member.Has(e.To) {
				return true
			}
		}
	}
	return false
}
