package explore

import (
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// MigrateStats reports what MigrateProgram did with the old revision's
// cached graphs.
type MigrateStats struct {
	// Rebound graphs were shared outright (identity edit).
	Rebound int
	// Repaired graphs went through edge-scoped Repair.
	Repaired int
	// Dropped graphs were evicted: init extension changed, a bound key
	// repair does not cover, a failed repair, or no plan at all. Later
	// requests rebuild them on demand.
	Dropped int
}

// MigrateProgram moves every cached graph of oldProg to newProg, repairing
// instead of rebuilding wherever the plan allows. resolve maps an init
// predicate's cache-key name to the predicate, reporting false when the
// predicate's extension may differ between the revisions (then the graph is
// dropped — its node set is stale). A nil plan drops everything, which is
// the correct degraded behavior for edits repair cannot model (variable
// changes).
//
// Old entries are detached first under the cache lock; repairs run outside
// it so concurrent Shared callers are never blocked on graph surgery. If a
// fresh build for the new key races the migration and lands first, the
// migrated graph is discarded — the built one is identical by the repair
// contract, and first-in wins.
func MigrateProgram(oldProg, newProg *guarded.Program, plan *RepairPlan, resolve func(initName string) (state.Predicate, bool)) MigrateStats {
	var st MigrateStats
	if oldProg == nil || newProg == nil || oldProg == newProg {
		return st
	}
	// Detach the old revision's resident entries. In-flight builds keyed on
	// oldProg complete and cache under the old key; they are stale-by-key,
	// not stale-by-content, and age out of the LRU like any unused entry.
	cache.mu.Lock()
	var moved []*cacheEntry
	for key, e := range cache.entries {
		if key.prog == oldProg && e.elem != nil {
			cache.lru.Remove(e.elem)
			e.elem = nil
			cache.states -= e.g.NumNodes()
			delete(cache.entries, key)
			moved = append(moved, e)
		}
	}
	cache.mu.Unlock()

	identity := plan.Identity()
	for _, e := range moved {
		var ng *Graph
		rebound := false
		switch {
		case plan == nil:
			// No plan: nothing survives.
		case identity:
			// Identity edits rebind any key — the graph, including its
			// fairness mask and (trivially satisfied) bound, is unchanged.
			ng = e.g.rebind(sharedKernel(newProg), e.g.fair)
			rebound = true
		case e.key.max != 0:
			// Bounded graphs are outside Repair's scope; rebuild on demand.
		default:
			init, ok := resolve(e.key.init)
			if !ok {
				break
			}
			g, err := Repair(e.g, newProg, plan, init, Options{Fair: fairFromKey(e.key.fair, newProg.NumActions())})
			if err == nil {
				ng = g
			}
		}
		if ng == nil {
			st.Dropped++
			continue
		}
		if !insertMigrated(cacheKey{prog: newProg, init: e.key.init, fair: e.key.fair, max: e.key.max}, ng) {
			st.Dropped++
			continue
		}
		if rebound {
			st.Rebound++
		} else {
			st.Repaired++
		}
	}
	return st
}

// fairFromKey reconstructs a fairness mask from its cache-key encoding
// ("" = all fair).
func fairFromKey(key string, numActs int) []bool {
	if key == "" {
		return nil
	}
	fair := make([]bool, numActs)
	for i := range fair {
		fair[i] = i < len(key) && key[i] == '1'
	}
	return fair
}

// insertMigrated inserts a migrated graph as a ready resident entry,
// reporting false when it was not retained (a racing build already holds
// the key, or the graph exceeds the budget outright).
func insertMigrated(key cacheKey, g *Graph) bool {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if _, exists := cache.entries[key]; exists {
		return false
	}
	if g.NumNodes() > cache.budget {
		return false
	}
	ready := make(chan struct{})
	close(ready)
	e := &cacheEntry{key: key, ready: ready, g: g}
	e.elem = cache.lru.PushFront(e)
	cache.entries[key] = e
	cache.states += g.NumNodes()
	cache.evictLocked(e)
	return true
}
