package explore

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// The graph cache is the process-wide memo behind Shared: checkers that need
// the transition graph of (program, init, fairness, bound) get the one
// already built instead of re-exploring the state space. Identity follows
// the same discipline as the prove.Certify registry — a program is its
// *guarded.Program pointer — combined with the init predicate's name (see
// memoizablePredName for the naming contract), the fairness mask, and the
// MaxStates bound. The bound belongs in the key: an unbounded graph must not
// answer a bounded request that is required to fail with ErrStateBound, and
// vice versa. Parallelism stays out of the key because graphs are canonical —
// byte-identical at any worker count.

type cacheKey struct {
	prog *guarded.Program
	init string
	fair string // "" when nil or all-true; else one '0'/'1' per action
	max  int
}

type cacheEntry struct {
	key   cacheKey
	ready chan struct{} // closed when g/err are set
	g     *Graph
	err   error
	elem  *list.Element // non-nil while resident in the LRU
}

type graphCache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	lru     *list.List // of *cacheEntry; front = most recently used
	states  int        // total NumNodes across resident graphs
	budget  int
}

// defaultCacheBudget bounds the cache by total state count across resident
// graphs (~4.2M states; the Ring7 graph alone is 823543). Eviction is LRU.
const defaultCacheBudget = 4 << 20

var cache = &graphCache{
	entries: map[cacheKey]*cacheEntry{},
	lru:     list.New(),
	budget:  defaultCacheBudget,
}

// Cache counters. builds counts every Build call in the process (cached or
// not); the others account for Shared/Peek traffic.
var (
	buildCount    atomic.Int64
	cacheHits     atomic.Int64
	cacheMisses   atomic.Int64
	cacheBypasses atomic.Int64
	cacheEvicts   atomic.Int64
)

// Stats is a snapshot of the graph cache counters.
type Stats struct {
	Builds    int64 // explore.Build calls (every engine invocation)
	Hits      int64 // Shared/Peek requests served from the cache
	Misses    int64 // Shared requests that had to build
	Bypasses  int64 // Shared requests with unmemoizable keys (direct Build)
	Evictions int64 // graphs evicted by the size budget
	Resident  int   // graphs currently cached
	States    int   // total states across cached graphs
}

// CacheStats returns a snapshot of the cache counters.
func CacheStats() Stats {
	cache.mu.Lock()
	resident, states := cache.lru.Len(), cache.states
	cache.mu.Unlock()
	return Stats{
		Builds:    buildCount.Load(),
		Hits:      cacheHits.Load(),
		Misses:    cacheMisses.Load(),
		Bypasses:  cacheBypasses.Load(),
		Evictions: cacheEvicts.Load(),
		Resident:  resident,
		States:    states,
	}
}

// ResetCache empties the graph cache and zeroes the counters. Tests and
// benchmarks use it to measure from a clean slate. In-flight builds complete
// normally but are not retained.
func ResetCache() {
	cache.mu.Lock()
	for k, e := range cache.entries {
		if e.elem != nil {
			delete(cache.entries, k)
		}
	}
	cache.lru.Init()
	cache.states = 0
	cache.mu.Unlock()
	buildCount.Store(0)
	cacheHits.Store(0)
	cacheMisses.Store(0)
	cacheBypasses.Store(0)
	cacheEvicts.Store(0)
}

// SetCacheBudget sets the cache's size budget in total states and returns
// the previous value, evicting immediately if the new budget is smaller.
// Values below 1 disable caching of new graphs (everything evicts).
func SetCacheBudget(states int) int {
	cache.mu.Lock()
	prev := cache.budget
	cache.budget = states
	cache.evictLocked(nil)
	cache.mu.Unlock()
	return prev
}

// fairKeyOf normalizes a fairness mask: nil and all-true are the same
// semantics, so both map to "".
func fairKeyOf(fair []bool) string {
	allFair := true
	for _, f := range fair {
		if !f {
			allFair = false
			break
		}
	}
	if fair == nil || allFair {
		return ""
	}
	b := make([]byte, len(fair))
	for i, f := range fair {
		if f {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// sharedKeyOf derives the cache key for a request, reporting false when the
// request cannot be keyed (the init predicate has no memoizable name).
//
//dc:cachekey builder
func sharedKeyOf(p *guarded.Program, init state.Predicate, opts Options) (cacheKey, bool) {
	name := init.String()
	if !memoizablePredName(name) {
		return cacheKey{}, false
	}
	return cacheKey{prog: p, init: name, fair: fairKeyOf(opts.Fair), max: opts.MaxStates}, true
}

// Shared returns the transition graph for (p, init, opts), building it at
// most once per process per key and serving every later identical request
// from the cache. Requests whose init predicate cannot serve as a key (see
// memoizablePredName) bypass the cache and build directly. Concurrent
// requests for the same key are coalesced: one goroutine builds, the rest
// wait. A failed build is never cached — the error is returned to every
// coalesced waiter and the next request retries.
//
// The returned graph is shared: callers must not mutate it (they never
// could — the Graph API is read-only — but sets returned by SetOf, Reach,
// etc. remain private per call).
func Shared(p *guarded.Program, init state.Predicate, opts Options) (*Graph, error) {
	return SharedCtx(context.Background(), p, init, opts)
}

// SharedCtx is Shared under a context. Cancellation aborts the caller's own
// build (a cancelled build is never cached) and stops a coalesced wait, so
// an abandoned request releases its CPU instead of exploring to completion.
// The singleflight survives cancellation of individual requesters: when the
// goroutine that was building aborts, waiters whose contexts are still live
// retry — the next round elects a new builder rather than propagating the
// stranger's cancellation.
func SharedCtx(ctx context.Context, p *guarded.Program, init state.Predicate, opts Options) (*Graph, error) {
	key, ok := sharedKeyOf(p, init, opts)
	if !ok {
		cacheBypasses.Add(1)
		return BuildCtx(ctx, p, init, opts)
	}
	for {
		cache.mu.Lock()
		if e, found := cache.entries[key]; found {
			if e.elem != nil { // resident: done and successful
				cache.lru.MoveToFront(e.elem)
				cache.mu.Unlock()
				cacheHits.Add(1)
				return e.g, nil
			}
			cache.mu.Unlock()
			select { // in flight: wait for the builder
			case <-e.ready:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if e.err != nil {
				if isCancellation(e.err) {
					// The builder's requester walked away; our request is
					// still live, so contend for the next flight.
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					continue
				}
				return nil, e.err
			}
			cacheHits.Add(1)
			return e.g, nil
		}
		e := &cacheEntry{key: key, ready: make(chan struct{})}
		cache.entries[key] = e
		cache.mu.Unlock()
		cacheMisses.Add(1)

		g, err := BuildCtx(ctx, p, init, opts)
		cache.mu.Lock()
		if err != nil {
			// Never poison the cache: drop the entry so the next request
			// retries. Cancelled builds take this path too — an aborted
			// exploration is partial and must never serve later requests.
			delete(cache.entries, key)
		} else {
			e.g = g
			if g.NumNodes() <= cache.budget {
				e.elem = cache.lru.PushFront(e)
				cache.states += g.NumNodes()
				cache.evictLocked(e)
			} else {
				// Oversized graphs are returned but not retained.
				delete(cache.entries, key)
			}
		}
		cache.mu.Unlock()
		e.err = err
		close(e.ready)
		return g, err
	}
}

// isCancellation reports whether err stems from a context ending, directly
// or wrapped.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// ResidentOf returns the total resident states across cached graphs built
// from p, without touching the LRU or the hit counters. It is the quota
// accounting hook for services that bill cache residency to tenants (see
// internal/serve): charge what the tenant's programs actually hold.
func ResidentOf(p *guarded.Program) int {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	total := 0
	for key, e := range cache.entries {
		if key.prog == p && e.elem != nil {
			total += e.g.NumNodes()
		}
	}
	return total
}

// EvictProgram drops every resident graph built from p and returns the
// number of states freed. In-flight builds are unaffected (they complete
// and cache normally); later requests for the evicted keys rebuild. This is
// the quota enforcement hook: a tenant over its residency budget gives back
// its least-recently-used program's graphs wholesale.
func EvictProgram(p *guarded.Program) int {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	freed := 0
	for key, e := range cache.entries {
		if key.prog == p && e.elem != nil {
			cache.lru.Remove(e.elem)
			e.elem = nil
			freed += e.g.NumNodes()
			cache.states -= e.g.NumNodes()
			delete(cache.entries, key)
			cacheEvicts.Add(1)
		}
	}
	return freed
}

// Peek returns the cached graph for (p, init, opts) without building or
// waiting: in-flight and absent entries both report false.
func Peek(p *guarded.Program, init state.Predicate, opts Options) (*Graph, bool) {
	key, ok := sharedKeyOf(p, init, opts)
	if !ok {
		return nil, false
	}
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if e, found := cache.entries[key]; found && e.elem != nil {
		cache.lru.MoveToFront(e.elem)
		cacheHits.Add(1)
		return e.g, true
	}
	return nil, false
}

// evictLocked drops least-recently-used graphs until the budget holds,
// never evicting keep (the entry just inserted). Callers hold cache.mu.
func (c *graphCache) evictLocked(keep *cacheEntry) {
	for c.states > c.budget {
		back := c.lru.Back()
		if back == nil {
			return
		}
		victim := back.Value.(*cacheEntry)
		if victim == keep {
			if back.Prev() == nil {
				return
			}
			back = back.Prev()
			victim = back.Value.(*cacheEntry)
		}
		c.lru.Remove(back)
		victim.elem = nil
		c.states -= victim.g.NumNodes()
		delete(c.entries, victim.key)
		cacheEvicts.Add(1)
	}
}

// The kernel memo shares compiled transition kernels across Build and Scan
// calls for the same program. Kernels are immutable and concurrency-safe
// (all mutable state lives in per-caller Scratches), so one per program
// suffices for the whole process.
var (
	kernelMu   sync.Mutex
	kernels    = map[*guarded.Program]*guarded.Kernel{}
	kernelSize = 0
)

// kernelMemoCap bounds the kernel memo. Kernels are small, but programs can
// be created in unbounded numbers (property tests, synthesis); on overflow
// the memo is dropped wholesale rather than tracked with an LRU.
const kernelMemoCap = 256

func sharedKernel(p *guarded.Program) *guarded.Kernel {
	kernelMu.Lock()
	k, ok := kernels[p]
	if !ok {
		if kernelSize >= kernelMemoCap {
			kernels = map[*guarded.Program]*guarded.Kernel{}
			kernelSize = 0
		}
		k = guarded.Compile(p)
		kernels[p] = k
		kernelSize++
	}
	kernelMu.Unlock()
	return k
}
