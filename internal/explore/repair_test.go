package explore

import (
	"errors"
	"testing"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// identityPlan maps n actions onto themselves clean.
func identityPlan(n int) *RepairPlan {
	p := &RepairPlan{OldActions: n, OldIndex: make([]int, n), Dirt: make([]ActionDirt, n)}
	for i := range p.OldIndex {
		p.OldIndex[i] = i
	}
	return p
}

func TestRepairPlanIdentity(t *testing.T) {
	if (*RepairPlan)(nil).Identity() {
		t.Error("nil plan must not be identity")
	}
	if !identityPlan(3).Identity() {
		t.Error("self-mapping clean plan must be identity")
	}
	p := identityPlan(3)
	p.Dirt[1] = ActionGuardDirty
	if p.Identity() {
		t.Error("a dirty action must break identity")
	}
	q := identityPlan(3)
	q.OldIndex[2] = 1
	if q.Identity() {
		t.Error("a reordered action must break identity")
	}
	r := identityPlan(3)
	r.OldActions = 4
	if r.Identity() {
		t.Error("a dropped old action must break identity")
	}
}

func TestRepairRebuildSentinel(t *testing.T) {
	p := counter(t, 4, inc(4))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan := identityPlan(1)
	for _, tc := range []struct {
		name string
		call func() error
	}{
		{"nil old", func() error { _, err := Repair(nil, p, plan, state.True, Options{}); return err }},
		{"nil prog", func() error { _, err := Repair(g, nil, plan, state.True, Options{}); return err }},
		{"nil plan", func() error { _, err := Repair(g, p, nil, state.True, Options{}); return err }},
		{"bounded", func() error { _, err := Repair(g, p, plan, state.True, Options{MaxStates: 10}); return err }},
		{"schema mismatch", func() error {
			q := counter(t, 5, inc(5))
			_, err := Repair(g, q, plan, state.True, Options{})
			return err
		}},
	} {
		if err := tc.call(); !errors.Is(err, ErrRepairRebuild) {
			t.Errorf("%s: err = %v, want ErrRepairRebuild", tc.name, err)
		}
	}
	// A malformed plan is a caller bug, not a rebuild request.
	bad := identityPlan(1)
	bad.OldIndex[0] = 7
	if _, err := Repair(g, p, bad, state.True, Options{}); err == nil || errors.Is(err, ErrRepairRebuild) {
		t.Errorf("out-of-range plan: err = %v, want a non-sentinel error", err)
	}
}

func TestRepairIdentitySharesArenas(t *testing.T) {
	p := counter(t, 6, inc(6))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := counter(t, 6, inc(6))
	rep, err := Repair(g, q, identityPlan(1), state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Program() != q {
		t.Error("repaired graph must answer for the new program")
	}
	if &rep.vals[0] != &g.vals[0] || &rep.idxs[0] != &g.idxs[0] {
		t.Error("identity repair must share the old node arenas")
	}
	if &rep.outEdges[0] != &g.outEdges[0] {
		t.Error("identity repair must share the old edge arena")
	}
}

func TestMigrateProgramRebindsAndRepairs(t *testing.T) {
	ResetCache()
	p := counter(t, 6, inc(6))
	ge2 := state.Pred("ge2", func(s state.State) bool { return s.Get(0) >= 2 })
	if _, err := Shared(p, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Shared(p, ge2, Options{}); err != nil {
		t.Fatal(err)
	}

	resolve := func(name string) (state.Predicate, bool) {
		switch name {
		case state.True.String():
			return state.True, true
		case "ge2":
			return ge2, true
		}
		return state.Predicate{}, false
	}

	// Identity edit: both graphs rebind, no builds.
	q := counter(t, 6, inc(6))
	before := CacheStats()
	st := MigrateProgram(p, q, identityPlan(1), resolve)
	if st.Rebound != 2 || st.Repaired != 0 || st.Dropped != 0 {
		t.Fatalf("identity migrate stats = %+v, want 2 rebound", st)
	}
	for _, init := range []state.Predicate{state.True, ge2} {
		if _, err := Shared(q, init, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	if d := CacheStats().Builds - before.Builds; d != 0 {
		t.Errorf("builds after identity migrate = %d, want 0 (both keys rebound)", d)
	}

	// Dirty edit: both graphs go through Repair.
	r := counter(t, 6, inc(6))
	dirty := identityPlan(1)
	dirty.Dirt[0] = ActionGuardDirty
	before = CacheStats()
	st = MigrateProgram(q, r, dirty, resolve)
	if st.Rebound != 0 || st.Repaired != 2 || st.Dropped != 0 {
		t.Fatalf("dirty migrate stats = %+v, want 2 repaired", st)
	}
	if _, err := Shared(r, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if d := CacheStats().Builds - before.Builds; d != 0 {
		t.Errorf("builds after repair migrate = %d, want 0", d)
	}

	// No plan: everything is dropped and rebuilt on demand.
	s := counter(t, 6, inc(6))
	st = MigrateProgram(r, s, nil, resolve)
	if st.Dropped != 2 || st.Rebound != 0 || st.Repaired != 0 {
		t.Fatalf("nil-plan migrate stats = %+v, want 2 dropped", st)
	}
	before = CacheStats()
	if _, err := Shared(s, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if d := CacheStats().Builds - before.Builds; d != 1 {
		t.Errorf("builds after dropped migrate = %d, want 1 (rebuild)", d)
	}
}

func TestMigrateProgramDropsUnresolvedInit(t *testing.T) {
	ResetCache()
	p := counter(t, 6, inc(6))
	ge2 := state.Pred("ge2", func(s state.State) bool { return s.Get(0) >= 2 })
	if _, err := Shared(p, ge2, Options{}); err != nil {
		t.Fatal(err)
	}
	q := counter(t, 6, inc(6))
	dirty := identityPlan(1)
	dirty.Dirt[0] = ActionGuardDirty
	none := func(string) (state.Predicate, bool) { return state.Predicate{}, false }
	st := MigrateProgram(p, q, dirty, none)
	if st.Dropped != 1 || st.Repaired != 0 {
		t.Fatalf("unresolved-init migrate stats = %+v, want 1 dropped", st)
	}
}

func TestMigrateProgramRepairedGraphIsCorrect(t *testing.T) {
	ResetCache()
	// Old program counts to 4; the new one counts to 5 over the same
	// 0..5 schema — a genuine guard widening, repaired in cache.
	sch, err := state.NewSchema(state.IntVar("x", 6))
	if err != nil {
		t.Fatal(err)
	}
	p := guarded.MustProgram("counter", sch, inc(5))
	q := guarded.MustProgram("counter", sch, inc(6))
	if _, err := Shared(p, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	dirty := identityPlan(1)
	dirty.Dirt[0] = ActionGuardDirty
	resolve := func(name string) (state.Predicate, bool) {
		if name == state.True.String() {
			return state.True, true
		}
		return state.Predicate{}, false
	}
	st := MigrateProgram(p, q, dirty, resolve)
	if st.Repaired != 1 {
		t.Fatalf("migrate stats = %+v, want 1 repaired", st)
	}
	g, err := Shared(q, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Build(q, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != ref.NumEdges() || g.NumNodes() != ref.NumNodes() {
		t.Errorf("migrated graph %d nodes/%d edges, rebuild %d/%d",
			g.NumNodes(), g.NumEdges(), ref.NumNodes(), ref.NumEdges())
	}
}
