package explore

import (
	"fmt"
	"strings"

	"detcorr/internal/state"
)

// ViolationKind classifies how a liveness obligation fails.
type ViolationKind int

const (
	// ViolationDeadlock: a maximal finite computation ends outside the goal.
	ViolationDeadlock ViolationKind = iota + 1
	// ViolationLivelock: a weakly fair infinite computation avoids the goal
	// forever.
	ViolationLivelock
)

// String renders the violation kind.
func (k ViolationKind) String() string {
	switch k {
	case ViolationDeadlock:
		return "deadlock"
	case ViolationLivelock:
		return "livelock"
	default:
		return fmt.Sprintf("ViolationKind(%d)", int(k))
	}
}

// LivenessViolation is a counterexample to "every fair maximal computation
// from the start set reaches the goal": a finite stem from a start state,
// followed (for livelocks) by a cycle that a fair computation can repeat
// forever.
type LivenessViolation struct {
	Kind  ViolationKind
	Stem  []state.State
	Cycle []state.State
}

// Error implements the error interface.
func (v *LivenessViolation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "liveness violated (%s)", v.Kind)
	if len(v.Stem) > 0 {
		fmt.Fprintf(&b, "; stem of %d states from %s to %s", len(v.Stem), v.Stem[0], v.Stem[len(v.Stem)-1])
	}
	if len(v.Cycle) > 0 {
		fmt.Fprintf(&b, "; fair cycle of %d states at %s", len(v.Cycle), v.Cycle[0])
	}
	return b.String()
}

// FairCycle looks for a weakly fair infinite computation confined to the
// node set `within`, using only fair-action edges for the recurring part
// (unfair actions — faults — occur finitely often and cannot sustain a
// cycle). It returns one SCC admitting such a computation, or nil.
//
// An SCC C admits a fair run iff it has an internal fair edge and, for every
// fair action a that is enabled at all states of C, some a-transition stays
// inside C. (If such an a had no internal transition, any run confined to C
// would keep a continuously enabled yet never execute it; conversely a tour
// of all states and internal fair edges of C is weakly fair.)
func (g *Graph) FairCycle(within *Bitset) []int {
	comps := g.fairSCCs(within)
	for _, comp := range comps {
		member := NewBitset(g.n)
		for _, v := range comp {
			member.Add(v)
		}
		if !g.hasInternalFairEdge(member, comp) {
			continue
		}
		if g.sccAdmitsFairRun(member, comp) {
			return comp
		}
	}
	return nil
}

// fairSCCs computes SCCs of the subgraph with only fair-action edges,
// running Tarjan over a filtered CSR view (no in-lists needed). The view is
// built once per graph and the decompositions are memoized by `within`.
func (g *Graph) fairSCCs(within *Bitset) [][]int {
	if g.memo != nil {
		return g.memoFairSCCs(within)
	}
	return g.fairEdgeView().SCCs(within)
}

func (g *Graph) hasInternalFairEdge(member *Bitset, comp []int) bool {
	for _, v := range comp {
		for _, e := range g.Out(v) {
			if g.fair[e.Action] && member.Has(e.To) {
				return true
			}
		}
	}
	return false
}

func (g *Graph) sccAdmitsFairRun(member *Bitset, comp []int) bool {
	for a := 0; a < g.numActs; a++ {
		if !g.fair[a] {
			continue
		}
		enabledEverywhere := true
		hasInternal := false
		for _, v := range comp {
			if !g.Enabled(v, a) {
				enabledEverywhere = false
				break
			}
		}
		if !enabledEverywhere {
			continue
		}
		for _, v := range comp {
			for _, e := range g.Out(v) {
				if e.Action == a && member.Has(e.To) {
					hasInternal = true
					break
				}
			}
			if hasInternal {
				break
			}
		}
		if !hasInternal {
			return false
		}
	}
	return true
}

// CheckEventually verifies that every fair maximal computation starting in
// `from` reaches `goal`. It returns nil on success, or a counterexample.
//
// A violating computation never visits goal, so it stays in the subgraph of
// non-goal nodes: the check looks for a reachable deadlock there, or a fair
// cycle there (reachable via any edges, recurring via fair edges only —
// unfair fault actions occur finitely often, Assumption 2).
func (g *Graph) CheckEventually(from, goal *Bitset) *LivenessViolation {
	if g.memo != nil {
		return g.memoCheckEventually(from, goal)
	}
	return g.computeCheckEventually(from, goal)
}

func (g *Graph) computeCheckEventually(from, goal *Bitset) *LivenessViolation {
	avoid := goal
	start := from.Clone()
	start.Subtract(avoid)
	if start.Empty() {
		return nil
	}
	nonGoal := avoid.Complement()
	reach := g.Reach(start, nonGoal)
	// Deadlocks outside the goal: one word-level intersection with the
	// precomputed deadlock set.
	dead := reach.Clone()
	dead.Intersect(g.dead)
	if !dead.Empty() {
		stem, _ := g.PathBetween(start, dead, nonGoal)
		return &LivenessViolation{Kind: ViolationDeadlock, Stem: stem}
	}
	// Fair cycles outside the goal.
	if comp := g.FairCycle(reach); comp != nil {
		member := NewBitset(g.n)
		for _, v := range comp {
			member.Add(v)
		}
		stem, _ := g.PathBetween(start, member, nonGoal)
		cycle := make([]state.State, 0, len(comp))
		for _, v := range comp {
			cycle = append(cycle, g.State(v))
		}
		return &LivenessViolation{Kind: ViolationLivelock, Stem: stem, Cycle: cycle}
	}
	return nil
}

// CheckEventuallyAlways verifies that every fair maximal computation from
// `from` reaches the goal *and remains in it*: the computation has a suffix
// entirely inside goal (and finite computations end inside goal). This is
// the shape of the paper's Convergence condition when the goal set is closed
// along the computation.
//
// It is checked as: every computation reaches the largest subset of goal
// that is closed under all edges (the "sink" of goal); a computation that
// only grazes a non-closed part of goal can leave it again.
func (g *Graph) CheckEventuallyAlways(from, goal *Bitset) *LivenessViolation {
	sink := g.LargestClosedSubset(goal)
	return g.CheckEventually(from, sink)
}

// LargestClosedSubset returns the largest subset C of `set` such that every
// edge from a node of C stays in C (greatest fixpoint: repeatedly remove
// nodes with an escaping edge).
func (g *Graph) LargestClosedSubset(set *Bitset) *Bitset {
	c := set.Clone()
	var queue []int
	c.ForEach(func(id int) bool {
		for _, e := range g.Out(id) {
			if !c.Has(e.To) {
				queue = append(queue, id)
				break
			}
		}
		return true
	})
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if !c.Has(id) {
			continue
		}
		c.Remove(id)
		// Predecessors of id inside c may now escape.
		for _, e := range g.In(id) {
			if c.Has(e.To) {
				queue = append(queue, e.To)
			}
		}
	}
	return c
}
