package explore

// The out-of-core exploration engine ("Beyond RAM", ROADMAP item 2). The
// in-RAM engines cap near ~10^7 states because three structures grow with
// the state space: the visited set, the BFS frontier, and (for Build) the
// CSR arenas. This engine removes the first two from RAM:
//
//   - the visited set is partitioned by state index (spillvisited.go): a
//     dense bitset front when it fits the budget, Bloom-fronted sorted shard
//     files when it does not;
//   - the frontier is double-buffered to framed, CRC-checked run files
//     (spillfile.go) whenever a level outgrows its in-RAM buffer;
//   - in the partitioned build engine below, each worker exclusively owns a
//     slice of the partitions and successors are routed to their owner
//     through spillable outboxes — ownership replaces the shared visited
//     set, so the hot claim path has no atomics and no lock contention.
//
// Determinism is preserved end to end: the engine discovers exactly the
// states and transitions the sequential engine does, and assemble()'s
// canonical renumbering (node ids ascend with state index) makes the
// resulting Graph byte-identical to the in-RAM engines' at any worker or
// partition count. The streaming Scan path (scan.go) keeps the in-RAM
// scanner's exact FIFO visitation order, so witnesses coincide too.
//
// The CSR arenas of a Build still materialize in RAM — a Graph is an in-RAM
// artifact. Verdicts over super-RAM systems therefore go through Scan and
// FindDeadlock, which stream visitors over the kernel without assembling a
// graph; for those, the resident set is the visited front plus the run-file
// buffers, and the budget holds regardless of state count.

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Process-wide spill counters (see SpillCounters). All are monotone;
// instance-local tallies are folded in when an engine run finishes, so the
// hot claim path pays no atomic per state.
var (
	spillFrontierRuns atomic.Int64
	spillBytes        atomic.Int64
	spillFrontHits    atomic.Int64
	spillFrontMisses  atomic.Int64
	spillShardProbes  atomic.Int64
	spillShardMerges  atomic.Int64
)

// SpillStats is a snapshot of the out-of-core engine's counters.
type SpillStats struct {
	FrontierRuns int64 // framed chunks flushed to spill files
	BytesSpilled int64 // bytes written to spill files (frontier runs, shards, parent logs)
	FrontHits    int64 // visited claims resolved by the in-RAM front (bitset or Bloom)
	FrontMisses  int64 // claims that had to consult deeper layers
	ShardProbes  int64 // binary-search probes of shard files (disk)
	ShardMerges  int64 // delta-into-shard-file merge passes
}

// BloomHitRate is the fraction of visited claims the in-RAM front resolved
// without touching deeper layers; 1 means the claim path never left RAM.
func (s SpillStats) BloomHitRate() float64 {
	if s.FrontHits+s.FrontMisses == 0 {
		return 1
	}
	return float64(s.FrontHits) / float64(s.FrontHits+s.FrontMisses)
}

// SpillCounters returns a snapshot of the process-wide spill counters.
func SpillCounters() SpillStats {
	return SpillStats{
		FrontierRuns: spillFrontierRuns.Load(),
		BytesSpilled: spillBytes.Load(),
		FrontHits:    spillFrontHits.Load(),
		FrontMisses:  spillFrontMisses.Load(),
		ShardProbes:  spillShardProbes.Load(),
		ShardMerges:  spillShardMerges.Load(),
	}
}

// ResetSpillCounters zeroes the spill counters (benchmarks and tests).
func ResetSpillCounters() {
	spillFrontierRuns.Store(0)
	spillBytes.Store(0)
	spillFrontHits.Store(0)
	spillFrontMisses.Store(0)
	spillShardProbes.Store(0)
	spillShardMerges.Store(0)
}

// The process-wide default spill configuration, set by long-running hosts
// (dcserved) and CLI flags (dctl -mem-budget) the same way
// SetDefaultParallelism sets the default worker count: Options/ScanOptions
// whose MemBudget is zero inherit it. A budget is not a mode switch —
// explorations that fit the budget never touch disk — so raising the
// default process-wide is safe for small systems and turns builds that
// would outgrow RAM into spilled ones instead of unbounded growth.
var (
	defaultSpillMu     sync.Mutex
	defaultSpillBudget int64
	defaultSpillDir    string
)

// SetDefaultSpill sets the process-wide default memory budget (bytes) and
// spill directory used when Options.MemBudget is zero, returning the
// previous values so callers can restore them. A budget of 0 restores the
// in-RAM engines as the default; dir "" means the OS temp directory.
func SetDefaultSpill(budget int64, dir string) (int64, string) {
	defaultSpillMu.Lock()
	defer defaultSpillMu.Unlock()
	pb, pd := defaultSpillBudget, defaultSpillDir
	if budget < 0 {
		budget = 0
	}
	defaultSpillBudget, defaultSpillDir = budget, dir
	return pb, pd
}

// DefaultSpill returns the current process-wide spill defaults.
func DefaultSpill() (int64, string) {
	defaultSpillMu.Lock()
	defer defaultSpillMu.Unlock()
	return defaultSpillBudget, defaultSpillDir
}

// ParseByteSize parses a human byte count with an optional K/M/G suffix
// (binary: K = 1024) into bytes — the format of every -mem-budget flag
// (dctl, dcserved, dcbench).
func ParseByteSize(s string) (int64, error) {
	mult := int64(1)
	num := s
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, num = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, num = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, num = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.ParseInt(num, 10, 64)
	if err != nil || v <= 0 {
		return 0, fmt.Errorf("want a positive byte count like 512K, 64M, or 2G, got %q", s)
	}
	return v * mult, nil
}

// spillConfig is a resolved spill request: a positive byte budget, a parent
// directory for run and shard files, and a partition count.
type spillConfig struct {
	budget int64
	dir    string
	parts  int
}

// resolveSpill merges explicit fields with the process defaults. memBudget
// > 0 selects the out-of-core engine; < 0 forces the in-RAM engines even
// when a process default is set; 0 defers to the default.
func resolveSpill(memBudget int64, dir string, parts int) (spillConfig, bool) {
	if memBudget == 0 {
		db, dd := DefaultSpill()
		memBudget = db
		if dir == "" {
			dir = dd
		}
	}
	if memBudget <= 0 {
		return spillConfig{}, false
	}
	if memBudget < spillMinBudget {
		memBudget = spillMinBudget
	}
	if parts <= 0 {
		parts = defaultSpillPartitions
	}
	return spillConfig{budget: memBudget, dir: dir, parts: parts}, true
}

// defaultSpillPartitions is the visited-set partition count when
// Options.Partitions is zero: enough slices to feed a wide worker pool and
// keep individual shard files moderate, few enough that per-partition Bloom
// fronts stay usefully large.
const defaultSpillPartitions = 64

// spillMinBudget floors the effective budget so the structure arithmetic
// (Bloom sizes, buffer splits) stays sane; budgets below it behave like it.
const spillMinBudget = 1 << 16

// spillRun is the per-exploration spill context: a private scratch
// directory plus the finishers that fold instance counters into the
// process-wide totals. finish (idempotent) runs the finishers and removes
// the directory with every run and shard file in it.
type spillRun struct {
	cfg       spillConfig
	dir       string
	finishers []func()
}

func newSpillRun(cfg spillConfig) (*spillRun, error) {
	parent := cfg.dir
	if parent == "" {
		parent = os.TempDir()
	} else if err := os.MkdirAll(parent, 0o777); err != nil {
		return nil, fmt.Errorf("explore: spill dir: %w", err)
	}
	dir, err := os.MkdirTemp(parent, "dcspill-")
	if err != nil {
		return nil, fmt.Errorf("explore: spill dir: %w", err)
	}
	return &spillRun{cfg: cfg, dir: dir}, nil
}

func (r *spillRun) finish() {
	for _, f := range r.finishers {
		f()
	}
	r.finishers = nil
	if r.dir != "" {
		os.RemoveAll(r.dir)
		r.dir = ""
	}
}

// visitedShare is the portion of the budget reserved for the visited set;
// the rest buffers the frontier runs and outboxes.
func (r *spillRun) visitedShare() int64 { return r.cfg.budget / 2 }

// newVisited builds the single-owner visited set for a sequential spilled
// exploration: dense when the whole bitset fits the visited share, sharded
// otherwise. Its counters are folded in at finish.
func (r *spillRun) newVisited(total uint64) spillVisited {
	var v spillVisited
	if denseBytes := int64((total + 7) / 8); denseBytes <= r.visitedShare() {
		v = &denseSpillVisited{words: make([]uint64, (total+63)/64)}
	} else {
		v = newShardedVisited(r.dir, newSpillPartitioner(total, r.cfg.parts), r.visitedShare())
	}
	r.finishers = append(r.finishers, v.finish)
	return v
}

// exploreSpill is the out-of-core build engine: a round-synchronous BFS in
// which worker w exclusively owns every partition p with p mod W == w — its
// slice of the visited set, its own disk-backed frontier, and the expansion
// arena of every state it claims. Successors that land in a foreign
// partition are routed through per-(sender,receiver) outboxes and claimed
// by their owner after a barrier; successors that land in an owned
// partition are claimed immediately and expanded in the same round. No
// visited word is ever touched by two workers (partitions are 64-aligned
// blocks), so claims are plain loads and stores — the shared-visited
// contention that makes the in-RAM parallel engine regress on small
// machines does not exist here.
//
// The discovered state and transition sets are schedule-independent (the
// kernel is a pure function of the index and every state is expanded
// exactly once, by its owner), so after assemble()'s canonical renumbering
// the Graph is byte-identical to the sequential engine's.
func exploreSpill(ctx context.Context, k *guarded.Kernel, init state.Predicate, maxStates, workers int, cfg spillConfig) ([]expansion, error) {
	sch := k.Schema()
	total, _ := sch.NumStates()
	run, err := newSpillRun(cfg)
	if err != nil {
		return nil, err
	}
	defer run.finish()

	if workers < 1 {
		workers = 1
	}
	if workers > cfg.parts {
		workers = cfg.parts
	}
	pt := newSpillPartitioner(total, cfg.parts)
	claims := makeOwnedClaims(run, pt, workers, total)

	var (
		count     atomic.Int64
		exceeded  atomic.Bool
		cancelled atomic.Bool
		errOnce   sync.Once
		firstErr  error
	)
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				cancelled.Store(true)
			case <-stop:
			}
		}()
	}
	// fail records the first I/O error and aborts the pool through the same
	// flag cancellation uses; workers wind down within a poll interval.
	fail := func(err error) {
		if err == nil {
			return
		}
		errOnce.Do(func() { firstErr = err })
		cancelled.Store(true)
	}

	wbudget := run.cfg.budget / 4 / int64(workers)
	frontBuf := int(wbudget / 2) // two run-file sides per frontier
	obBuf := int(run.cfg.budget / 4 / int64(workers*workers))
	frontiers := make([]*spillFrontier, workers)
	outboxes := make([][]*spillOutbox, workers) // [sender][receiver]
	for w := 0; w < workers; w++ {
		frontiers[w] = newSpillFrontier(run.dir, frontBuf)
		outboxes[w] = make([]*spillOutbox, workers)
		for o := 0; o < workers; o++ {
			outboxes[w][o] = newSpillOutbox(run.dir, obBuf)
		}
	}
	defer func() {
		for w := 0; w < workers; w++ {
			frontiers[w].close()
			for o := 0; o < workers; o++ {
				outboxes[w][o].w.remove()
			}
		}
	}()

	owner := func(idx uint64) int { return pt.part(idx) % workers }
	// claim dedups idx on its owner's visited slice (the caller must be the
	// owner) and enqueues fresh states, enforcing the exact MaxStates bound.
	claim := func(w int, idx uint64) error {
		fresh, err := claims[w](idx)
		if err != nil || !fresh {
			return err
		}
		if maxStates > 0 && count.Add(1) > int64(maxStates) {
			exceeded.Store(true)
			return nil
		}
		return frontiers[w].push(idx)
	}

	// Phase 1: each worker scans its own partitions' index blocks for
	// initial states — ownership makes routing unnecessary here.
	{
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				row := make([]int32, sch.NumVars())
				tick := 0
				for lo := uint64(0); lo < total; lo += pt.block {
					if pt.part(lo)%workers != w {
						continue
					}
					hi := lo + pt.block
					if hi > total {
						hi = total
					}
					scanInit(sch, init, lo, hi, row, func(idx uint64) bool {
						if tick++; tick&cancelPollMask == 0 && (cancelled.Load() || exceeded.Load()) {
							return false
						}
						fail(claim(w, idx))
						return !cancelled.Load()
					})
					if cancelled.Load() {
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 2: round-synchronous expansion with ownership routing. Each
	// round: (a) every worker drains its own frontier to empty, expanding on
	// its kernel scratch, claiming owned successors directly (they extend
	// the same drain) and routing foreign ones to the owner's outbox;
	// (b) barrier; (c) every owner drains its inboxes, claiming and
	// enqueueing for the next round. The barrier is what lets step (c) run
	// without locks: all sends into a round's outboxes happen before any
	// owner reads them, and the fresh outboxes installed in (c) are
	// published to the senders by the next barrier.
	perWorker := make([]expansion, workers)
	scratches := make([]*guarded.Scratch, workers)
	for w := range scratches {
		scratches[w] = k.NewScratch()
	}
	pending := int64(1) // force the first round
	for pending > 0 && !cancelled.Load() && !exceeded.Load() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ex := &perWorker[w]
				sc := scratches[w]
				steps := 0
				for {
					if steps&cancelPollMask == 0 && (cancelled.Load() || exceeded.Load()) {
						return
					}
					steps++
					idx, ok, err := frontiers[w].pop()
					if err != nil {
						fail(err)
						return
					}
					if !ok {
						return
					}
					off := len(ex.edges)
					ex.edges = sc.Transitions(idx, ex.edges)
					for _, tr := range ex.edges[off:] {
						if o := owner(tr.To); o == w {
							if err := claim(w, tr.To); err != nil {
								fail(err)
								return
							}
						} else if err := outboxes[w][o].push(tr.To); err != nil {
							fail(err)
							return
						}
					}
					ex.nodes = append(ex.nodes, rawNode{idx: idx, off: off, n: int32(len(ex.edges) - off)})
				}
			}(w)
		}
		wg.Wait()
		if cancelled.Load() || exceeded.Load() {
			break
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				steps := 0
				for s := 0; s < workers; s++ {
					ob := outboxes[s][w]
					r, err := ob.w.reader()
					if err != nil {
						fail(err)
						return
					}
					for {
						if steps&cancelPollMask == 0 && cancelled.Load() {
							return
						}
						steps++
						rec, ok, err := r.next()
						if err != nil {
							fail(err)
							return
						}
						if !ok {
							break
						}
						if err := claim(w, leUint64(rec)); err != nil {
							fail(err)
							return
						}
					}
					ob.w.remove()
					outboxes[s][w] = newSpillOutbox(run.dir, obBuf)
				}
			}(w)
		}
		wg.Wait()
		pending = 0
		for w := 0; w < workers; w++ {
			pending += frontiers[w].pending
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	if exceeded.Load() {
		return nil, boundError(maxStates)
	}
	return perWorker, nil
}

// spillOutbox buffers successor indices routed from one worker to the owner
// of their partition, spilling to a run file past its share of the budget.
// One outbox exists per (sender, receiver) pair, so senders never contend.
type spillOutbox struct {
	w   *runWriter
	rec [8]byte
}

func newSpillOutbox(dir string, bufBytes int) *spillOutbox {
	return &spillOutbox{w: newRunWriter(dir, "outbox", 8, bufBytes)}
}

func (o *spillOutbox) push(idx uint64) error {
	putUint64(&o.rec, idx)
	return o.w.push(o.rec[:])
}

//dc:zeroalloc
func putUint64(dst *[8]byte, v uint64) {
	dst[0] = byte(v)
	dst[1] = byte(v >> 8)
	dst[2] = byte(v >> 16)
	dst[3] = byte(v >> 24)
	dst[4] = byte(v >> 32)
	dst[5] = byte(v >> 40)
	dst[6] = byte(v >> 48)
	dst[7] = byte(v >> 56)
}

//dc:zeroalloc
func leUint64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// makeOwnedClaims builds the per-worker claim functions of the partitioned
// engine. In the dense mode the bitset storage is shared, but a worker only
// ever touches the 64-aligned words of its own partitions, so plain bit
// operations are race-free; in the sharded mode each worker gets its own
// instance whose Bloom fronts and shard files materialize lazily for just
// the partitions it claims into. Both register their counter folds on the
// run.
func makeOwnedClaims(run *spillRun, pt spillPartitioner, workers int, total uint64) []func(uint64) (bool, error) {
	claims := make([]func(uint64) (bool, error), workers)
	if denseBytes := int64((total + 7) / 8); denseBytes <= run.visitedShare() {
		words := make([]uint64, (total+63)/64)
		for w := 0; w < workers; w++ {
			hits := new(int64)
			claims[w] = func(idx uint64) (bool, error) {
				*hits++
				word := &words[idx>>6]
				bit := uint64(1) << (idx & 63)
				if *word&bit != 0 {
					return false, nil
				}
				*word |= bit
				return true, nil
			}
			run.finishers = append(run.finishers, func() { spillFrontHits.Add(*hits) })
		}
		return claims
	}
	// Each instance is sized for the full visited share but only its owned
	// partitions (1/workers of them) allocate, so the shares add up to the
	// budget's visited half across the pool.
	for w := 0; w < workers; w++ {
		inst := newShardedVisited(run.dir, pt, run.visitedShare())
		claims[w] = inst.claim
		run.finishers = append(run.finishers, inst.finish)
	}
	return claims
}
