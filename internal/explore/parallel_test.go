package explore

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"detcorr/internal/crosscheck"
	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// graphsIdentical compares two graphs node by node: same states in the same
// node order, same out-edge lists, same in-lists, same fairness.
func graphsIdentical(a, b *Graph) error {
	if a.NumNodes() != b.NumNodes() {
		return fmt.Errorf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for i := 0; i < a.NumNodes(); i++ {
		if !a.State(i).Equal(b.State(i)) {
			return fmt.Errorf("node %d: states differ: %s vs %s", i, a.State(i), b.State(i))
		}
		ao, bo := a.Out(i), b.Out(i)
		if len(ao) != len(bo) {
			return fmt.Errorf("node %d: out degree %d vs %d", i, len(ao), len(bo))
		}
		for k := range ao {
			if ao[k] != bo[k] {
				return fmt.Errorf("node %d edge %d: %+v vs %+v", i, k, ao[k], bo[k])
			}
		}
		ai, bi := a.In(i), b.In(i)
		if len(ai) != len(bi) {
			return fmt.Errorf("node %d: in degree %d vs %d", i, len(ai), len(bi))
		}
		for k := range ai {
			if ai[k] != bi[k] {
				return fmt.Errorf("node %d in-edge %d: %+v vs %+v", i, k, ai[k], bi[k])
			}
		}
	}
	for a2 := range a.fair {
		if a.fair[a2] != b.fair[a2] {
			return fmt.Errorf("action %d: fairness differs", a2)
		}
	}
	return nil
}

// requireSameGraph builds the program with the sequential engine and with
// several worker counts and requires identical results.
func requireSameGraph(t *testing.T, p *guarded.Program, init state.Predicate, opts Options) *Graph {
	t.Helper()
	opts.Parallelism = 1
	seq, err := Build(p, init, opts)
	if err != nil {
		t.Fatalf("sequential build: %v", err)
	}
	for _, w := range []int{2, 3, runtime.NumCPU()} {
		opts.Parallelism = w
		par, err := Build(p, init, opts)
		if err != nil {
			t.Fatalf("parallel build (%d workers): %v", w, err)
		}
		if err := graphsIdentical(seq, par); err != nil {
			t.Fatalf("parallel build (%d workers) diverges: %v", w, err)
		}
	}
	return seq
}

func TestParallelMatchesSequentialOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p, err := crosscheck.Generate(seed, crosscheck.GenConfig{Vars: 4, Actions: 4})
		if err != nil {
			t.Fatal(err)
		}
		requireSameGraph(t, p, state.True, Options{})
	}
}

func TestParallelPartialInit(t *testing.T) {
	p := counter(t, 64, inc(64))
	from := state.Pred("x=17", func(s state.State) bool { return s.Get(0) == 17 })
	g := requireSameGraph(t, p, from, Options{})
	if g.NumNodes() != 47 { // 17..63
		t.Errorf("nodes = %d, want 47", g.NumNodes())
	}
}

func TestParallelNondeterministicActions(t *testing.T) {
	sch := state.MustSchema(state.IntVar("x", 8), state.IntVar("y", 8))
	scatter := guarded.Choice("scatter", state.True, func(s state.State) []state.State {
		// Several successors per state, in a fixed order.
		return []state.State{
			s.With(0, (s.Get(0)+1)%8),
			s.With(1, (s.Get(1)+3)%8),
			s.With(0, (s.Get(0)+s.Get(1))%8),
		}
	})
	p := guarded.MustProgram("scatter", sch, scatter)
	g := requireSameGraph(t, p, state.True, Options{})
	if g.NumNodes() != 64 {
		t.Errorf("nodes = %d, want 64", g.NumNodes())
	}
}

func TestParallelFairMask(t *testing.T) {
	p := counter(t, 16, inc(16), cycle(16))
	requireSameGraph(t, p, state.True, Options{Fair: []bool{true, false}})
}

// TestCanonicalNumbering pins the determinism contract: node ids ascend with
// the states' mixed-radix indices in both engines.
func TestCanonicalNumbering(t *testing.T) {
	p := counter(t, 32, cycle(32))
	from := state.Pred("x=5", func(s state.State) bool { return s.Get(0) == 5 })
	for _, par := range []int{1, 4} {
		g, err := Build(p, from, Options{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < g.NumNodes(); i++ {
			if g.State(i-1).Index() >= g.State(i).Index() {
				t.Fatalf("parallelism %d: node ids not in state-index order at %d", par, i)
			}
		}
	}
}

func TestSparseVisitedFallback(t *testing.T) {
	old := denseVisitedLimit
	denseVisitedLimit = 1 // force the sharded-map path for any real schema
	defer func() { denseVisitedLimit = old }()
	for seed := int64(0); seed < 5; seed++ {
		p, err := crosscheck.Generate(seed, crosscheck.GenConfig{Vars: 5, Actions: 4})
		if err != nil {
			t.Fatal(err)
		}
		requireSameGraph(t, p, state.True, Options{})
	}
}

// TestMaxStatesExact verifies the bound is exact in both engines: a build
// whose reachable set fits the bound succeeds, one state over fails.
func TestMaxStatesExact(t *testing.T) {
	const n = 100
	p := counter(t, n, inc(n))
	for _, par := range []int{1, 4} {
		g, err := Build(p, state.True, Options{MaxStates: n, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: bound == reachable must succeed: %v", par, err)
		}
		if g.NumNodes() != n {
			t.Fatalf("parallelism %d: nodes = %d, want %d", par, g.NumNodes(), n)
		}
		if _, err := Build(p, state.True, Options{MaxStates: n - 1, Parallelism: par}); !errors.Is(err, ErrStateBound) {
			t.Fatalf("parallelism %d: bound = reachable-1 must fail with ErrStateBound, got %v", par, err)
		}
	}
}

// TestMaxStatesExactFromInit exercises the bound during frontier expansion
// rather than the initial scan: a single initial state reaching n states.
func TestMaxStatesExactFromInit(t *testing.T) {
	const n = 64
	p := counter(t, n, inc(n))
	from := state.Pred("x=0", func(s state.State) bool { return s.Get(0) == 0 })
	for _, par := range []int{1, 4} {
		if g, err := Build(p, from, Options{MaxStates: n, Parallelism: par}); err != nil || g.NumNodes() != n {
			t.Fatalf("parallelism %d: exact bound from init: nodes=%v err=%v", par, g, err)
		}
		if _, err := Build(p, from, Options{MaxStates: n / 2, Parallelism: par}); !errors.Is(err, ErrStateBound) {
			t.Fatalf("parallelism %d: want ErrStateBound, got %v", par, err)
		}
	}
}

// TestParallelBoundAbortsWorkers checks that a large exploration under a
// small bound aborts promptly with ErrStateBound instead of exploring the
// whole space.
func TestParallelBoundAbortsWorkers(t *testing.T) {
	sch := state.MustSchema(state.IntVar("x", 200000))
	cyc := guarded.Det("cycle", state.True, func(s state.State) state.State {
		return s.With(0, (s.Get(0)+1)%200000)
	})
	p := guarded.MustProgram("big", sch, cyc)
	_, err := Build(p, state.True, Options{MaxStates: 500, Parallelism: 4})
	if !errors.Is(err, ErrStateBound) {
		t.Fatalf("want ErrStateBound, got %v", err)
	}
}

func TestDefaultParallelism(t *testing.T) {
	prev := SetDefaultParallelism(4)
	defer SetDefaultParallelism(prev)
	if DefaultParallelism() != 4 {
		t.Fatalf("DefaultParallelism = %d, want 4", DefaultParallelism())
	}
	p := counter(t, 20, inc(20))
	// Parallelism 0 defers to the default (now 4 workers)…
	viaDefault, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// …and an explicit 1 still forces the sequential engine.
	seq, err := Build(p, state.True, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := graphsIdentical(seq, viaDefault); err != nil {
		t.Fatal(err)
	}
	if SetDefaultParallelism(0) != 4 {
		t.Error("SetDefaultParallelism must return the previous value")
	}
	if DefaultParallelism() != 0 {
		t.Error("SetDefaultParallelism(0) must reset to sequential")
	}
	SetDefaultParallelism(4) // restored by the deferred call
}
