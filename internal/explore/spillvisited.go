package explore

// The out-of-core visited set. States are deduplicated by mixed-radix index
// through one of two representations picked from the memory budget:
//
//   - dense: a flat bitset over the whole index space, used whenever
//     total/8 bytes fit the budget's visited share. Claims never touch disk.
//   - sharded: the index space is block-cyclically hash-partitioned
//     (partition = (idx/block) mod P) and each partition keeps a Bloom
//     filter plus a small in-RAM delta in front of a sorted, fixed-width
//     (8 bytes per record) shard file probed by binary search over pread
//     windows. A Bloom miss proves the index is new, so the common path —
//     most claims in a BFS are first encounters — never touches disk;
//     only Bloom false positives and genuine revisits pay a probe.
//
// Both forms are single-owner: the sequential scan owns the whole set, the
// partitioned build engine gives each worker exclusive ownership of its
// partitions (blocks are 64-aligned, so dense claims by different owners
// never share a word). No atomics, no locks — ownership is the
// synchronization.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
)

// spillPartitioner maps state indices to partitions block-cyclically. Blocks
// are multiples of 64 indices so that dense-bitset words are never shared
// between partitions (and therefore never between owning workers).
type spillPartitioner struct {
	block uint64
	parts int
}

// newSpillPartitioner sizes blocks so each partition receives many blocks
// (balancing reachable sets that cluster in index space) while staying
// 64-aligned.
func newSpillPartitioner(total uint64, parts int) spillPartitioner {
	if parts < 1 {
		parts = 1
	}
	block := total / (uint64(parts) * 16)
	block -= block % 64
	if block < 64 {
		block = 64
	}
	return spillPartitioner{block: block, parts: parts}
}

//dc:zeroalloc
func (p spillPartitioner) part(idx uint64) int {
	return int(idx / p.block % uint64(p.parts))
}

// spillVisited is the dedup structure of the out-of-core engines. claim
// reports true exactly once per index; the error is non-nil only on spill
// I/O failure or a corrupt shard file. finish flushes the instance's local
// counters into the process-wide spill counters and releases disk resources.
type spillVisited interface {
	claim(idx uint64) (bool, error)
	finish()
}

// denseSpillVisited is the in-RAM front when the whole bitset fits: the
// fast path of the out-of-core engine, identical in effect to the in-RAM
// engines' dense visited set but single-owner and therefore atomic-free.
type denseSpillVisited struct {
	words []uint64
	hits  int64
}

//dc:zeroalloc
func (d *denseSpillVisited) claim(idx uint64) (bool, error) {
	d.hits++
	w := &d.words[idx>>6]
	bit := uint64(1) << (idx & 63)
	if *w&bit != 0 {
		return false, nil
	}
	*w |= bit
	return true, nil
}

func (d *denseSpillVisited) finish() {
	spillFrontHits.Add(d.hits)
	d.hits = 0
}

// spillRecentCap bounds each partition's unsorted insertion tail; at the cap
// the tail is sorted and merged into the delta.
const spillRecentCap = 256

// shardPart is one partition of the sharded visited set.
type shardPart struct {
	bloom     []uint64
	bloomMask uint64
	recent    []uint64 // unsorted insertion tail
	delta     []uint64 // sorted, merged into the shard file at deltaCap
	base      *os.File // sorted fixed-width records
	baseRecs  int64
	rdbuf     [8]byte
}

// shardedSpillVisited is the disk-backed mode: P shard parts behind Bloom
// fronts, plus instance-local counters flushed by finish. Parts allocate
// lazily on first claim, so an instance that only ever sees a subset of the
// partitions — each worker of the partitioned engine owns 1/W of them —
// pays only for that subset.
type shardedSpillVisited struct {
	parts     []shardPart
	pt        spillPartitioner
	dir       string
	deltaCap  int
	bloomBits uint64

	hits, misses, probes, merges int64
}

func newShardedVisited(dir string, pt spillPartitioner, visitedBytes int64) *shardedSpillVisited {
	p := int64(pt.parts)
	bloomBits := nextPow2(uint64(visitedBytes/2*8) / uint64(p))
	if bloomBits < 1<<12 {
		bloomBits = 1 << 12
	}
	deltaCap := int(visitedBytes / 2 / 8 / p)
	if deltaCap < 1<<10 {
		deltaCap = 1 << 10
	}
	return &shardedSpillVisited{
		parts:     make([]shardPart, pt.parts),
		pt:        pt,
		dir:       dir,
		deltaCap:  deltaCap,
		bloomBits: bloomBits,
	}
}

func nextPow2(v uint64) uint64 {
	p := uint64(1)
	for p < v {
		p <<= 1
	}
	return p
}

// splitmix64 is the Bloom hash: a full-avalanche mix of the state index,
// split into two independent bit positions.
//
//dc:zeroalloc
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// bloomHas reports whether idx may have been inserted (false = definitely
// new).
//
//dc:zeroalloc
func (p *shardPart) bloomHas(idx uint64) bool {
	h := splitmix64(idx)
	b1 := h & p.bloomMask
	b2 := (h >> 32) & p.bloomMask
	return p.bloom[b1>>6]&(1<<(b1&63)) != 0 && p.bloom[b2>>6]&(1<<(b2&63)) != 0
}

//dc:zeroalloc
func (p *shardPart) bloomAdd(idx uint64) {
	h := splitmix64(idx)
	b1 := h & p.bloomMask
	b2 := (h >> 32) & p.bloomMask
	p.bloom[b1>>6] |= 1 << (b1 & 63)
	p.bloom[b2>>6] |= 1 << (b2 & 63)
}

// ramHas searches the partition's in-RAM layers: the unsorted recent tail
// linearly, the sorted delta by binary search.
//
//dc:zeroalloc
func (p *shardPart) ramHas(idx uint64) bool {
	for _, v := range p.recent {
		if v == idx {
			return true
		}
	}
	lo, hi := 0, len(p.delta)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if p.delta[mid] < idx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(p.delta) && p.delta[lo] == idx
}

// baseHas probes the shard file by binary search over 8-byte pread windows.
// It is the only disk touch on the claim path and runs only when the Bloom
// front reports a possible hit that the RAM layers cannot resolve.
func (p *shardPart) baseHas(idx uint64) (bool, error) {
	lo, hi := int64(0), p.baseRecs
	for lo < hi {
		mid := (lo + hi) / 2
		if _, err := p.base.ReadAt(p.rdbuf[:], mid*8); err != nil {
			return false, fmt.Errorf("%w: shard probe: %v", ErrSpillCorrupt, err)
		}
		v := binary.LittleEndian.Uint64(p.rdbuf[:])
		switch {
		case v < idx:
			lo = mid + 1
		case v > idx:
			hi = mid
		default:
			return true, nil
		}
	}
	return false, nil
}

// claim inserts idx if absent. The Bloom front resolves first encounters
// without touching the deeper layers; everything else walks RAM then (if the
// partition has spilled) the shard file.
func (s *shardedSpillVisited) claim(idx uint64) (bool, error) {
	p := &s.parts[s.pt.part(idx)]
	if p.bloom == nil {
		p.bloom = make([]uint64, s.bloomBits/64)
		p.bloomMask = s.bloomBits - 1
		p.recent = make([]uint64, 0, spillRecentCap)
	}
	if !p.bloomHas(idx) {
		s.hits++
		p.bloomAdd(idx)
		return true, s.insert(p, idx)
	}
	s.misses++
	if p.ramHas(idx) {
		return false, nil
	}
	if p.base != nil {
		s.probes++
		found, err := p.baseHas(idx)
		if err != nil || found {
			return false, err
		}
	}
	p.bloomAdd(idx)
	return true, s.insert(p, idx)
}

// insert records a claimed index, compacting recent→delta→shard file as the
// layers fill.
func (s *shardedSpillVisited) insert(p *shardPart, idx uint64) error {
	p.recent = append(p.recent, idx)
	if len(p.recent) < spillRecentCap {
		return nil
	}
	sort.Slice(p.recent, func(i, j int) bool { return p.recent[i] < p.recent[j] })
	p.delta = mergeSorted(p.delta, p.recent)
	p.recent = p.recent[:0]
	if len(p.delta) >= s.deltaCap {
		return s.mergeToBase(p)
	}
	return nil
}

// mergeSorted merges two ascending uint64 slices (disjoint by construction:
// claim never inserts a duplicate) into a fresh ascending slice.
func mergeSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] < b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// mergeToBase streams the shard file and the sorted delta into a new shard
// file, replacing the old one. Records are raw fixed-width indices; the
// merge validates the old file's length against its record count, so a
// truncated shard is detected before it can swallow a state.
func (s *shardedSpillVisited) mergeToBase(p *shardPart) error {
	s.merges++
	nf, err := os.CreateTemp(s.dir, "shard-*.idx")
	if err != nil {
		return fmt.Errorf("explore: create shard file: %w", err)
	}
	w := bufio.NewWriterSize(nf, 1<<16)
	var wbuf [8]byte
	written := int64(0)
	emit := func(v uint64) error {
		binary.LittleEndian.PutUint64(wbuf[:], v)
		written++
		_, err := w.Write(wbuf[:])
		return err
	}
	di := 0
	if p.base != nil {
		st, err := p.base.Stat()
		if err == nil && st.Size() != p.baseRecs*8 {
			err = fmt.Errorf("%w: shard file holds %d bytes, expected %d", ErrSpillCorrupt, st.Size(), p.baseRecs*8)
		}
		if err != nil {
			nf.Close()
			os.Remove(nf.Name())
			return err
		}
		if _, err := p.base.Seek(0, 0); err != nil {
			nf.Close()
			os.Remove(nf.Name())
			return fmt.Errorf("explore: rewind shard file: %w", err)
		}
		r := bufio.NewReaderSize(p.base, 1<<16)
		var rbuf [8]byte
		for rec := int64(0); rec < p.baseRecs; rec++ {
			if _, err := io.ReadFull(r, rbuf[:]); err != nil {
				nf.Close()
				os.Remove(nf.Name())
				return fmt.Errorf("%w: shard merge read: %v", ErrSpillCorrupt, err)
			}
			v := binary.LittleEndian.Uint64(rbuf[:])
			for di < len(p.delta) && p.delta[di] < v {
				if err := emit(p.delta[di]); err != nil {
					return err
				}
				di++
			}
			if err := emit(v); err != nil {
				return err
			}
		}
	}
	for ; di < len(p.delta); di++ {
		if err := emit(p.delta[di]); err != nil {
			return err
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("explore: write shard file: %w", err)
	}
	spillBytes.Add(written * 8)
	if p.base != nil {
		old := p.base.Name()
		p.base.Close()
		os.Remove(old)
	}
	p.base = nf
	p.baseRecs = written
	p.delta = p.delta[:0]
	return nil
}

func (s *shardedSpillVisited) finish() {
	spillFrontHits.Add(s.hits)
	spillFrontMisses.Add(s.misses)
	spillShardProbes.Add(s.probes)
	spillShardMerges.Add(s.merges)
	s.hits, s.misses, s.probes, s.merges = 0, 0, 0, 0
	for i := range s.parts {
		if f := s.parts[i].base; f != nil {
			path := f.Name()
			f.Close()
			os.Remove(path)
			s.parts[i].base = nil
		}
	}
}
