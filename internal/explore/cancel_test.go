package explore

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"detcorr/internal/state"
)

// These tests pin the context-cancellation contract of BuildCtx / SharedCtx /
// ScanCtx: an abandoned request stops burning CPU, a cancelled build is never
// cached, and the singleflight survives the cancellation of individual
// requesters. They read process-global cache statistics, so like the other
// counter tests they must not run in parallel.

// cancellingInit returns a memoizably-named predicate that cancels the given
// context the first time it is evaluated, so the build is cancelled from
// inside its own seeding scan — strictly mid-build, after the entry is
// registered as in-flight.
func cancellingInit(cancel context.CancelFunc) state.Predicate {
	var once sync.Once
	return state.Pred("cancel(init)", func(s state.State) bool {
		once.Do(cancel)
		return true
	})
}

func TestBuildCtxCancelled(t *testing.T) {
	p := counter(t, 6, inc(6))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCtx(ctx, p, state.True, Options{}); !errors.Is(err, context.Canceled) {
		t.Errorf("sequential BuildCtx: want context.Canceled, got %v", err)
	}
	if _, err := BuildCtx(ctx, p, state.True, Options{Parallelism: 4}); !errors.Is(err, context.Canceled) {
		t.Errorf("parallel BuildCtx: want context.Canceled, got %v", err)
	}
}

func TestSharedCtxCancelledBuildNotCached(t *testing.T) {
	ResetCache()
	p := counter(t, 6, inc(6))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	init := cancellingInit(cancel)
	before := CacheStats()
	if _, err := SharedCtx(ctx, p, init, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, ok := Peek(p, init, Options{}); ok {
		t.Error("a cancelled build must not be resident")
	}
	// The aborted entry must not stick: a later live request rebuilds and
	// caches normally.
	g, err := Shared(p, init, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 {
		t.Errorf("rebuilt graph has %d nodes, want 6", g.NumNodes())
	}
	after := CacheStats()
	if d := after.Misses - before.Misses; d != 2 {
		t.Errorf("misses = %d, want 2 (cancelled attempt + rebuild)", d)
	}
	if _, ok := Peek(p, init, Options{}); !ok {
		t.Error("the rebuilt graph must be resident")
	}
}

func TestSharedCtxWaiterCancellation(t *testing.T) {
	ResetCache()
	p := counter(t, 6, inc(6))
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	slow := state.Pred("slow(init)", func(s state.State) bool {
		once.Do(func() { close(started) })
		<-release
		return true
	})

	builderErr := make(chan error, 1)
	go func() {
		_, err := Shared(p, slow, Options{})
		builderErr <- err
	}()
	<-started

	// A waiter coalesced onto the in-flight build whose own context dies must
	// return promptly with ctx.Err(), leaving the builder untouched.
	wctx, wcancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := SharedCtx(wctx, p, slow, Options{})
		waiterErr <- err
	}()
	wcancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled waiter: want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return while the build was in flight")
	}

	close(release)
	if err := <-builderErr; err != nil {
		t.Fatalf("builder: %v", err)
	}
	if _, ok := Peek(p, slow, Options{}); !ok {
		t.Error("the builder's graph must be resident despite the waiter's cancellation")
	}
}

func TestSharedCtxRetriesAfterCancelledBuilder(t *testing.T) {
	ResetCache()
	p := counter(t, 6, inc(6))
	bctx, bcancel := context.WithCancel(context.Background())
	defer bcancel()
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	gate := state.Pred("gate(init)", func(s state.State) bool {
		once.Do(func() { close(started) })
		<-release
		return true
	})

	builderErr := make(chan error, 1)
	go func() {
		_, err := SharedCtx(bctx, p, gate, Options{})
		builderErr <- err
	}()
	<-started

	// A second requester with a live context coalesces onto the flight.
	waiter := make(chan error, 1)
	var waiterGraph *Graph
	go func() {
		g, err := Shared(p, gate, Options{})
		waiterGraph = g
		waiter <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter reach the coalesced wait

	// The builder's requester walks away; its aborted build must not strand
	// the waiter — the waiter retries, elects itself builder, and succeeds.
	bcancel()
	close(release)
	if err := <-builderErr; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled builder: want context.Canceled, got %v", err)
	}
	select {
	case err := <-waiter:
		if err != nil {
			t.Fatalf("waiter after builder cancellation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded after the builder's cancellation")
	}
	if waiterGraph == nil || waiterGraph.NumNodes() != 6 {
		t.Fatalf("waiter graph = %v, want the 6-state counter graph", waiterGraph)
	}
	if g, ok := Peek(p, gate, Options{}); !ok || g != waiterGraph {
		t.Error("the retried build must be resident")
	}
}

func TestScanCtxCancelled(t *testing.T) {
	p := counter(t, 6, inc(6))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ScanCtx(ctx, p, state.True, ScanOptions{}, Scanner{}); !errors.Is(err, context.Canceled) {
		t.Errorf("ScanCtx: want context.Canceled, got %v", err)
	}
	if _, _, err := FindDeadlockCtx(ctx, p, state.True, ScanOptions{}); !errors.Is(err, context.Canceled) {
		t.Errorf("FindDeadlockCtx: want context.Canceled, got %v", err)
	}
}

func TestResidentOfAndEvictProgram(t *testing.T) {
	ResetCache()
	p := counter(t, 6, inc(6))
	q := counter(t, 4, inc(4))
	ge2 := state.Pred("x ge 2", func(s state.State) bool { return s.Get(0) >= 2 })
	if _, err := Shared(p, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Shared(p, ge2, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Shared(q, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if got := ResidentOf(p); got != 6+4 {
		t.Errorf("ResidentOf(p) = %d, want 10", got)
	}
	if got := ResidentOf(q); got != 4 {
		t.Errorf("ResidentOf(q) = %d, want 4", got)
	}
	before := CacheStats()
	if freed := EvictProgram(p); freed != 10 {
		t.Errorf("EvictProgram(p) freed %d states, want 10", freed)
	}
	after := CacheStats()
	if got := ResidentOf(p); got != 0 {
		t.Errorf("ResidentOf(p) after eviction = %d, want 0", got)
	}
	if _, ok := Peek(p, state.True, Options{}); ok {
		t.Error("evicted graph must not be resident")
	}
	if _, ok := Peek(q, state.True, Options{}); !ok {
		t.Error("eviction of p must not touch q's graphs")
	}
	if after.States != before.States-10 {
		t.Errorf("States = %d, want %d", after.States, before.States-10)
	}
	if d := after.Evictions - before.Evictions; d != 2 {
		t.Errorf("evictions = %d, want 2", d)
	}
	if freed := EvictProgram(p); freed != 0 {
		t.Errorf("second EvictProgram(p) freed %d, want 0", freed)
	}
}
