package explore

import (
	"errors"
	"sync"
	"testing"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Counter tests read process-global cache statistics, so they must not run
// in parallel with each other; none of them calls t.Parallel, and they
// measure deltas so raw Build calls from other tests can't skew them.

func TestSharedReturnsCachedGraph(t *testing.T) {
	ResetCache()
	p := counter(t, 6, inc(6))
	before := CacheStats()
	g1, err := Shared(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Shared(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("second Shared must return the cached graph pointer")
	}
	after := CacheStats()
	if d := after.Builds - before.Builds; d != 1 {
		t.Errorf("builds = %d, want 1", d)
	}
	if d := after.Misses - before.Misses; d != 1 {
		t.Errorf("misses = %d, want 1", d)
	}
	if d := after.Hits - before.Hits; d != 1 {
		t.Errorf("hits = %d, want 1", d)
	}
}

func TestSharedKeyDistinguishesRequests(t *testing.T) {
	ResetCache()
	p := counter(t, 6, inc(6))
	full, err := Shared(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ge2 := state.Pred("x ge 2", func(s state.State) bool { return s.Get(0) >= 2 })
	sub, err := Shared(p, ge2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if full == sub {
		t.Error("different init predicates must not share a cache entry")
	}
	if full.NumNodes() != 6 || sub.NumNodes() != 4 {
		t.Errorf("nodes = %d, %d; want 6, 4", full.NumNodes(), sub.NumNodes())
	}
	// Same program + init with a different fairness mask is a different key.
	unfair, err := Shared(p, state.True, Options{Fair: []bool{false}})
	if err != nil {
		t.Fatal(err)
	}
	if unfair == full {
		t.Error("fairness mask must be part of the cache key")
	}
	// An all-true mask is semantically nil and must hit the nil-mask entry.
	allFair, err := Shared(p, state.True, Options{Fair: []bool{true}})
	if err != nil {
		t.Fatal(err)
	}
	if allFair != full {
		t.Error("all-true fairness mask must normalize to the unmasked key")
	}
	// A second program with identical text is a different identity.
	q := counter(t, 6, inc(6))
	qg, err := Shared(q, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if qg == full {
		t.Error("cache identity must follow the program pointer")
	}
}

func TestSharedBypassesUnnamedInit(t *testing.T) {
	ResetCache()
	p := counter(t, 5, inc(5))
	anon := state.Pred("", func(s state.State) bool { return true })
	before := CacheStats()
	g1, err := Shared(p, anon, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Shared(p, anon, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g1 == g2 {
		t.Error("unnamed init predicates must bypass the cache (fresh build each call)")
	}
	after := CacheStats()
	if d := after.Bypasses - before.Bypasses; d != 2 {
		t.Errorf("bypasses = %d, want 2", d)
	}
	if d := after.Builds - before.Builds; d != 2 {
		t.Errorf("builds = %d, want 2", d)
	}
	if _, ok := Peek(p, anon, Options{}); ok {
		t.Error("Peek must miss for unnamed init predicates")
	}
}

func TestSharedFailedBuildNotCached(t *testing.T) {
	ResetCache()
	p := counter(t, 8, inc(8))
	before := CacheStats()
	for i := 0; i < 2; i++ {
		if _, err := Shared(p, state.True, Options{MaxStates: 3}); !errors.Is(err, ErrStateBound) {
			t.Fatalf("attempt %d: want ErrStateBound, got %v", i, err)
		}
	}
	after := CacheStats()
	// Both attempts must miss and rebuild: a failed build never poisons the
	// cache with either a graph or a sticky error.
	if d := after.Misses - before.Misses; d != 2 {
		t.Errorf("misses = %d, want 2", d)
	}
	if d := after.Builds - before.Builds; d != 2 {
		t.Errorf("builds = %d, want 2", d)
	}
	if _, ok := Peek(p, state.True, Options{MaxStates: 3}); ok {
		t.Error("failed build must not be resident")
	}
	// The bound is part of the key: the bounded failure must not shadow the
	// unbounded build, and the unbounded graph must not serve bounded
	// requests that are required to fail.
	if _, err := Shared(p, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Shared(p, state.True, Options{MaxStates: 3}); !errors.Is(err, ErrStateBound) {
		t.Errorf("bounded request after unbounded build: want ErrStateBound, got %v", err)
	}
}

func TestCacheEviction(t *testing.T) {
	ResetCache()
	defer SetCacheBudget(SetCacheBudget(20))
	a := counter(t, 12, inc(12))
	b := counter(t, 8, inc(8))
	if _, err := Shared(a, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Shared(b, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	// 12 + 8 = 20 fits exactly; both resident.
	s := CacheStats()
	if s.Resident != 2 || s.States != 20 {
		t.Fatalf("resident = %d (%d states), want 2 (20)", s.Resident, s.States)
	}
	// A third graph forces the least-recently-used one (a) out.
	c := counter(t, 5, inc(5))
	if _, err := Shared(c, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := Peek(a, state.True, Options{}); ok {
		t.Error("least-recently-used graph must be evicted")
	}
	if _, ok := Peek(b, state.True, Options{}); !ok {
		t.Error("more recently used graph must survive")
	}
	s = CacheStats()
	if s.States > 20 {
		t.Errorf("resident states = %d exceed the budget", s.States)
	}
	if s.Evictions == 0 {
		t.Error("eviction counter must advance")
	}
}

func TestCacheLRUTouchOnHit(t *testing.T) {
	ResetCache()
	defer SetCacheBudget(SetCacheBudget(20))
	a := counter(t, 12, inc(12))
	b := counter(t, 8, inc(8))
	if _, err := Shared(a, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Shared(b, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	// Touch a: now b is least recently used and must be the victim.
	if _, err := Shared(a, state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := Shared(counter(t, 5, inc(5)), state.True, Options{}); err != nil {
		t.Fatal(err)
	}
	if _, ok := Peek(a, state.True, Options{}); !ok {
		t.Error("recently touched graph must survive eviction")
	}
	if _, ok := Peek(b, state.True, Options{}); ok {
		t.Error("untouched graph must be the eviction victim")
	}
}

func TestCacheOversizedGraphNotRetained(t *testing.T) {
	ResetCache()
	defer SetCacheBudget(SetCacheBudget(4))
	p := counter(t, 10, inc(10))
	g, err := Shared(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 10 {
		t.Fatalf("nodes = %d, want 10", g.NumNodes())
	}
	if _, ok := Peek(p, state.True, Options{}); ok {
		t.Error("graph larger than the whole budget must not be retained")
	}
}

func TestSharedConcurrent(t *testing.T) {
	ResetCache()
	ps := []*guarded.Program{
		counter(t, 7, inc(7)),
		counter(t, 9, inc(9)),
		counter(t, 11, cycle(11)),
	}
	before := CacheStats()
	var wg sync.WaitGroup
	results := make([][]*Graph, 16)
	for w := 0; w < 16; w++ {
		w := w
		results[w] = make([]*Graph, len(ps))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				for i, pp := range ps {
					g, err := Shared(pp, state.True, Options{})
					if err != nil {
						t.Error(err)
						return
					}
					if results[w][i] == nil {
						results[w][i] = g
					} else if results[w][i] != g {
						t.Errorf("worker %d saw two graphs for program %d", w, i)
						return
					}
					// Exercise the shared per-graph memos under contention.
					g.Reach(g.All(), nil)
					g.SetOf(state.True)
				}
			}
		}()
	}
	wg.Wait()
	after := CacheStats()
	if d := after.Builds - before.Builds; d != int64(len(ps)) {
		t.Errorf("builds = %d, want %d (one per program; concurrent requests must coalesce)", d, len(ps))
	}
	for i := range ps {
		for w := 1; w < 16; w++ {
			if results[w][i] != results[0][i] {
				t.Fatalf("workers disagree on the graph for program %d", i)
			}
		}
	}
}
