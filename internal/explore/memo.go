package explore

import (
	"strings"
	"sync"

	"detcorr/internal/state"
)

// graphMemo holds per-graph memoized derived artifacts: predicate bitsets,
// full reachability closures, the fair-edge view used by the SCC pass, fair
// SCC decompositions, liveness verdicts, and a generic key→value store for
// cross-package results (e.g. closure verdicts). Each artifact has its own
// mutex because computing one artifact may consult another (CheckEventually
// calls Reach and fairSCCs); a single lock would self-deadlock.
//
// Every Graph built by Build carries a memo. Filtered and fairness-restricted
// views get a fresh one — their edge sets or fairness masks differ, so none
// of the parent's artifacts carry over. A nil memo (zero-value Graphs built by
// tests) disables memoization; every accessor degrades to direct computation.
type graphMemo struct {
	setMu sync.Mutex
	sets  map[string]*Bitset

	reachMu sync.Mutex
	reach   []reachEntry

	ceMu sync.Mutex
	ce   []ceEntry

	fairOnce sync.Once
	fairView *Graph

	sccMu sync.Mutex
	sccs  []sccEntry

	genMu sync.Mutex
	gen   map[string]any
}

// reachMemoCap bounds the Reach memo: checks loop over a handful of start
// sets (the init set, the span, per-obligation P-sets), so a small LRU covers
// the reuse without retaining every one-off query on big graphs.
const reachMemoCap = 8

// ceMemoCap bounds the CheckEventually memo. Repeated identical obligations
// (the cached-reuse path) hit entry 0; fixpoint loops that shrink their sets
// each round mostly miss and just rotate through.
const ceMemoCap = 8

// sccMemoCap bounds the fair-SCC memo, keyed by the `within` restriction.
const sccMemoCap = 4

type reachEntry struct {
	from *Bitset
	res  *Bitset
}

type ceEntry struct {
	from, goal *Bitset
	v          *LivenessViolation
}

type sccEntry struct {
	within *Bitset // nil = unrestricted
	comps  [][]int
}

func newGraphMemo() *graphMemo {
	return &graphMemo{sets: map[string]*Bitset{}, gen: map[string]any{}}
}

// memoizablePredName reports whether a predicate name can serve as a memo
// key. The contract is the one the library's constructors maintain: for one
// program, a name built by the state package's combinators (And, Or, Not,
// VarEquals, named Pred closures, …) determines the predicate's extension.
// The unnamed placeholders — "" and the String() stand-ins "<anonymous>",
// "<safety>", "<problem>", "<faults>" — carry no identity and must bypass
// every name-keyed memo. Comparison operators in GCL-derived names ("x < 3")
// are fine; only the exact placeholder tokens disqualify a name.
// MemoizableName is the exported form of the contract, for packages that
// key their own per-graph results (via Graph.Memoize) on predicate names.
func MemoizableName(name string) bool { return memoizablePredName(name) }

func memoizablePredName(name string) bool {
	if name == "" {
		return false
	}
	for _, placeholder := range []string{"<anonymous>", "<safety>", "<problem>", "<faults>"} {
		if strings.Contains(name, placeholder) {
			return false
		}
	}
	return true
}

// bitsetEqual compares contents word by word (capacities match within one
// graph; differing lengths only arise across graphs and compare unequal).
func bitsetEqual(a, b *Bitset) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.n != b.n {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}

// memoSetOf serves SetOf from the per-graph memo when the predicate's name
// is a valid key, returning a private clone (SetOf callers mutate results).
func (g *Graph) memoSetOf(p state.Predicate) (*Bitset, bool) {
	m := g.memo
	if m == nil || !memoizablePredName(p.String()) {
		return nil, false
	}
	key := p.String()
	m.setMu.Lock()
	b, ok := m.sets[key]
	m.setMu.Unlock()
	if ok {
		return b.Clone(), true
	}
	b = g.computeSetOf(p)
	m.setMu.Lock()
	m.sets[key] = b
	m.setMu.Unlock()
	return b.Clone(), true
}

// memoReach serves unrestricted (within == nil) reachability queries from a
// small content-keyed LRU, cloning both the stored key and the returned set
// so callers that mutate their inputs or results never corrupt the memo.
func (g *Graph) memoReach(from *Bitset) *Bitset {
	m := g.memo
	m.reachMu.Lock()
	for i := range m.reach {
		if bitsetEqual(m.reach[i].from, from) {
			e := m.reach[i]
			copy(m.reach[1:i+1], m.reach[:i])
			m.reach[0] = e
			m.reachMu.Unlock()
			return e.res.Clone()
		}
	}
	m.reachMu.Unlock()
	res := g.computeReach(from, nil)
	m.reachMu.Lock()
	if len(m.reach) < reachMemoCap {
		m.reach = append(m.reach, reachEntry{})
	}
	copy(m.reach[1:], m.reach[:len(m.reach)-1])
	m.reach[0] = reachEntry{from: from.Clone(), res: res}
	m.reachMu.Unlock()
	return res.Clone()
}

// memoCheckEventually serves liveness verdicts from a content-keyed LRU. The
// keys are cloned on store: callers like the witness-predicate fixpoint
// mutate their start/goal sets between calls, and a stored alias would make
// later lookups compare against a moved target.
func (g *Graph) memoCheckEventually(from, goal *Bitset) *LivenessViolation {
	m := g.memo
	m.ceMu.Lock()
	for i := range m.ce {
		if bitsetEqual(m.ce[i].from, from) && bitsetEqual(m.ce[i].goal, goal) {
			e := m.ce[i]
			copy(m.ce[1:i+1], m.ce[:i])
			m.ce[0] = e
			m.ceMu.Unlock()
			return e.v
		}
	}
	m.ceMu.Unlock()
	v := g.computeCheckEventually(from, goal)
	m.ceMu.Lock()
	if len(m.ce) < ceMemoCap {
		m.ce = append(m.ce, ceEntry{})
	}
	copy(m.ce[1:], m.ce[:len(m.ce)-1])
	m.ce[0] = ceEntry{from: from.Clone(), goal: goal.Clone(), v: v}
	m.ceMu.Unlock()
	return v
}

// fairEdgeView returns the fair-edge-only view the SCC pass runs on,
// computed once per graph. Dropping the `within` term from the edge filter is
// sound because SCCs(within) never opens a frame for — and therefore never
// reads the out-edges of — a node outside within.
func (g *Graph) fairEdgeView() *Graph {
	m := g.memo
	if m == nil {
		return g.filterEdges(func(from int, e Edge) bool { return g.fair[e.Action] }, false)
	}
	m.fairOnce.Do(func() {
		m.fairView = g.filterEdges(func(from int, e Edge) bool { return g.fair[e.Action] }, false)
	})
	return m.fairView
}

// memoFairSCCs serves fair SCC decompositions keyed by the `within`
// restriction. The component slices are shared; callers treat them as
// read-only (FairCycle and its helpers only iterate).
func (g *Graph) memoFairSCCs(within *Bitset) [][]int {
	m := g.memo
	m.sccMu.Lock()
	for i := range m.sccs {
		if bitsetEqual(m.sccs[i].within, within) {
			e := m.sccs[i]
			copy(m.sccs[1:i+1], m.sccs[:i])
			m.sccs[0] = e
			m.sccMu.Unlock()
			return e.comps
		}
	}
	m.sccMu.Unlock()
	comps := g.fairEdgeView().SCCs(within)
	var key *Bitset
	if within != nil {
		key = within.Clone()
	}
	m.sccMu.Lock()
	if len(m.sccs) < sccMemoCap {
		m.sccs = append(m.sccs, sccEntry{})
	}
	copy(m.sccs[1:], m.sccs[:len(m.sccs)-1])
	m.sccs[0] = sccEntry{within: key, comps: comps}
	m.sccMu.Unlock()
	return comps
}

// Memoize returns the value computed for key the first time it was asked
// for on this graph, running compute at most once per key. It backs
// cross-package per-graph results — closure verdicts, derived sets — whose
// keys follow the predicate-name contract of the per-graph memos: within one
// graph a key must determine its value. Graphs without a memo (zero-value
// test graphs) run compute every time. compute must not call Memoize on the
// same graph.
func (g *Graph) Memoize(key string, compute func() any) any {
	m := g.memo
	if m == nil {
		return compute()
	}
	m.genMu.Lock()
	if v, ok := m.gen[key]; ok {
		m.genMu.Unlock()
		return v
	}
	m.genMu.Unlock()
	v := compute()
	m.genMu.Lock()
	if prev, ok := m.gen[key]; ok {
		v = prev // another goroutine computed it first; keep one canonical value
	} else {
		m.gen[key] = v
	}
	m.genMu.Unlock()
	return v
}
