package explore

import (
	"math/rand"
	"testing"
)

// randBitset draws a random subset of [0,n) and its map oracle.
func randBitset(rng *rand.Rand, n int) (*Bitset, map[int]bool) {
	b := NewBitset(n)
	oracle := map[int]bool{}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			b.Add(i)
			oracle[i] = true
		}
	}
	return b, oracle
}

func sameSet(b *Bitset, oracle map[int]bool) bool {
	if b.Count() != len(oracle) {
		return false
	}
	for id := range oracle {
		if !b.Has(id) {
			return false
		}
	}
	return true
}

// TestBitsetAgainstMapOracle checks every set operation against a
// map[int]bool oracle on random seeded inputs, plus the algebraic laws the
// checker relies on (Clone independence, De Morgan via Complement,
// idempotence, union/intersection symmetry of counts).
func TestBitsetAgainstMapOracle(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		a, oa := randBitset(rng, n)
		b, ob := randBitset(rng, n)

		union := a.Clone()
		union.Union(b)
		ou := map[int]bool{}
		for id := range oa {
			ou[id] = true
		}
		for id := range ob {
			ou[id] = true
		}
		if !sameSet(union, ou) {
			t.Fatalf("seed %d: Union diverges from oracle", seed)
		}

		inter := a.Clone()
		inter.Intersect(b)
		oi := map[int]bool{}
		for id := range oa {
			if ob[id] {
				oi[id] = true
			}
		}
		if !sameSet(inter, oi) {
			t.Fatalf("seed %d: Intersect diverges from oracle", seed)
		}

		diff := a.Clone()
		diff.Subtract(b)
		od := map[int]bool{}
		for id := range oa {
			if !ob[id] {
				od[id] = true
			}
		}
		if !sameSet(diff, od) {
			t.Fatalf("seed %d: Subtract diverges from oracle", seed)
		}

		comp := a.Complement()
		oc := map[int]bool{}
		for i := 0; i < n; i++ {
			if !oa[i] {
				oc[i] = true
			}
		}
		if !sameSet(comp, oc) {
			t.Fatalf("seed %d: Complement diverges from oracle", seed)
		}

		// Clone independence: mutating the clone leaves the original alone.
		cl := a.Clone()
		for i := 0; i < n; i++ {
			cl.Add(i)
		}
		if !sameSet(a, oa) {
			t.Fatalf("seed %d: Clone shares storage with the original", seed)
		}

		// |A∪B| + |A∩B| = |A| + |B| and subset relations.
		if union.Count()+inter.Count() != a.Count()+b.Count() {
			t.Fatalf("seed %d: inclusion-exclusion violated", seed)
		}
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) || !a.SubsetOf(union) || !b.SubsetOf(union) {
			t.Fatalf("seed %d: subset laws violated", seed)
		}

		// Idempotence: A∪A = A, A∩A = A.
		idem := a.Clone()
		idem.Union(a)
		if !sameSet(idem, oa) {
			t.Fatalf("seed %d: Union not idempotent", seed)
		}
		idem.Intersect(a)
		if !sameSet(idem, oa) {
			t.Fatalf("seed %d: Intersect not idempotent", seed)
		}

		// ForEach visits exactly the members, in increasing order.
		last := -1
		visited := 0
		a.ForEach(func(id int) bool {
			if id <= last || !oa[id] {
				t.Fatalf("seed %d: ForEach emitted %d after %d", seed, id, last)
			}
			last = id
			visited++
			return true
		})
		if visited != len(oa) {
			t.Fatalf("seed %d: ForEach visited %d of %d members", seed, visited, len(oa))
		}
	}
}

// randGraph builds a structural Graph with n placeholder nodes and random
// edges; only the adjacency structure matters for SCC and reachability.
func randGraph(rng *rand.Rand, n int, edgeProb float64) *Graph {
	out := make([][]Edge, n)
	for v := 0; v < n; v++ {
		for w := 0; w < n; w++ {
			if rng.Float64() < edgeProb {
				out[v] = append(out[v], Edge{Action: 0, To: w})
			}
		}
	}
	return newAdjacencyGraph(out, []bool{true})
}

// TestSCCsAgainstReachOracle cross-checks Tarjan against the definitional
// oracle: u and v share a component iff each reaches the other. It also
// verifies the partition property and Tarjan's reverse-topological output
// order on random seeded graphs.
func TestSCCsAgainstReachOracle(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(14)
		g := randGraph(rng, n, 0.15+rng.Float64()*0.2)

		comps := g.SCCs(nil)
		compOf := make([]int, n)
		for i := range compOf {
			compOf[i] = -1
		}
		for ci, comp := range comps {
			for _, v := range comp {
				if compOf[v] != -1 {
					t.Fatalf("seed %d: node %d in two components", seed, v)
				}
				compOf[v] = ci
			}
		}
		for v, c := range compOf {
			if c == -1 {
				t.Fatalf("seed %d: node %d in no component", seed, v)
			}
		}

		// Oracle: mutual reachability, computed with the graph's own Reach
		// from singletons (Reach is itself oracle-tested by simple BFS
		// below).
		reach := make([]*Bitset, n)
		for v := 0; v < n; v++ {
			from := NewBitset(n)
			from.Add(v)
			reach[v] = g.Reach(from, nil)
		}
		// Independent naive BFS to validate Reach on the same graph.
		for v := 0; v < n; v++ {
			seen := map[int]bool{v: true}
			queue := []int{v}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, e := range g.Out(u) {
					if !seen[e.To] {
						seen[e.To] = true
						queue = append(queue, e.To)
					}
				}
			}
			if !sameSet(reach[v], seen) {
				t.Fatalf("seed %d: Reach(%d) diverges from naive BFS", seed, v)
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := compOf[u] == compOf[v]
				mutual := reach[u].Has(v) && reach[v].Has(u)
				if same != mutual {
					t.Fatalf("seed %d: nodes %d,%d: sameComp=%v mutual-reach=%v", seed, u, v, same, mutual)
				}
			}
		}

		// Reverse topological order: every edge leaving a component lands in
		// a component emitted earlier.
		for v := 0; v < n; v++ {
			for _, e := range g.Out(v) {
				if compOf[e.To] != compOf[v] && compOf[e.To] > compOf[v] {
					t.Fatalf("seed %d: SCC order not reverse-topological (%d→%d)", seed, v, e.To)
				}
			}
		}
	}
}

// TestBitsetFillIntersectNotNextAfter property-tests the three operations
// the CSR assembly path leans on — Fill, IntersectNot, and the closure-free
// iterator NextAfter — against the same map oracle, on random seeded inputs
// including word-boundary sizes.
func TestBitsetFillIntersectNotNextAfter(t *testing.T) {
	sizes := []int{1, 63, 64, 65, 127, 128, 129}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := sizes[rng.Intn(len(sizes))] + rng.Intn(200)

		full := NewBitset(n)
		full.Fill()
		if full.Count() != n {
			t.Fatalf("seed %d: Fill over n=%d has Count %d", seed, n, full.Count())
		}
		for i := 0; i < n; i++ {
			if !full.Has(i) {
				t.Fatalf("seed %d: Fill missing id %d of %d", seed, i, n)
			}
		}
		if c := full.Complement(); !c.Empty() {
			t.Fatalf("seed %d: complement of Fill not empty (tail bits leaked)", seed)
		}

		a, oa := randBitset(rng, n)
		b, ob := randBitset(rng, n)
		diff := a.Clone()
		diff.IntersectNot(b)
		od := map[int]bool{}
		for id := range oa {
			if !ob[id] {
				od[id] = true
			}
		}
		if !sameSet(diff, od) {
			t.Fatalf("seed %d: IntersectNot diverges from oracle", seed)
		}
		// Fill then IntersectNot is exactly Complement — the deadlock-set
		// computation's shape.
		dead := NewBitset(n)
		dead.Fill()
		dead.IntersectNot(a)
		if !sameSet(dead, mapComplement(oa, n)) {
			t.Fatalf("seed %d: Fill∘IntersectNot diverges from complement oracle", seed)
		}

		var got []int
		for id := a.NextAfter(-1); id >= 0; id = a.NextAfter(id) {
			got = append(got, id)
		}
		want := a.Slice()
		if len(got) != len(want) {
			t.Fatalf("seed %d: NextAfter visited %d ids, Slice has %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: NextAfter order diverges at %d: %d vs %d", seed, i, got[i], want[i])
			}
		}
		if a.NextAfter(n) != -1 || a.NextAfter(n+100) != -1 {
			t.Fatalf("seed %d: NextAfter past capacity must return -1", seed)
		}
	}
}

func mapComplement(m map[int]bool, n int) map[int]bool {
	out := map[int]bool{}
	for i := 0; i < n; i++ {
		if !m[i] {
			out[i] = true
		}
	}
	return out
}
