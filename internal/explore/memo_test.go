package explore

import (
	"testing"

	"detcorr/internal/state"
)

func TestMemoizableName(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"true", true},
		{"x == 0", true},
		{"x < 3", true}, // comparison operators are not placeholders
		{"¬(Z) ∧ X", true},
		{"", false},
		{"<anonymous>", false},
		{"¬(<safety>)", false},
		{"<problem> ∧ Z", false},
		{"<faults>", false},
	}
	for _, tc := range cases {
		if got := MemoizableName(tc.name); got != tc.want {
			t.Errorf("MemoizableName(%q) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSetOfReturnsPrivateClones: SetOf callers routinely mutate their result
// (Subtract, Union, …); the memo must hand out clones, never the stored set.
func TestSetOfReturnsPrivateClones(t *testing.T) {
	p := counter(t, 8, inc(8))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	even := state.Pred("x even", func(s state.State) bool { return s.Get(0)%2 == 0 })
	a := g.SetOf(even)
	if a.Count() != 4 {
		t.Fatalf("count = %d, want 4", a.Count())
	}
	a.Subtract(a) // caller trashes its copy
	b := g.SetOf(even)
	if b.Count() != 4 {
		t.Errorf("memoized set corrupted by caller mutation: count = %d, want 4", b.Count())
	}
	if a == b {
		t.Error("SetOf must return distinct bitsets per call")
	}
}

// TestReachMemoClonesKeysAndResults: both the stored key and the returned set
// must be clones, so neither input mutation after the call nor result
// mutation can move a memo entry under later lookups.
func TestReachMemoClonesKeysAndResults(t *testing.T) {
	p := counter(t, 8, inc(8))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	from := g.SetOf(state.Pred("x ge 5", func(s state.State) bool { return s.Get(0) >= 5 }))
	r1 := g.Reach(from, nil)
	if r1.Count() != 3 { // 5, 6, 7
		t.Fatalf("reach count = %d, want 3", r1.Count())
	}
	from.Subtract(from) // mutate the input after the call
	r1.Subtract(r1)     // and the result
	from2 := g.SetOf(state.Pred("x ge 5", func(s state.State) bool { return s.Get(0) >= 5 }))
	r2 := g.Reach(from2, nil)
	if r2.Count() != 3 {
		t.Errorf("memoized reach corrupted: count = %d, want 3", r2.Count())
	}
	// Restricted (within != nil) queries bypass the memo entirely and still
	// agree with a fresh unrestricted query over the full set.
	r3 := g.Reach(from2, g.All())
	if !bitsetEqual(r2, r3) {
		t.Error("within-restricted reach over the full set must equal the memoized result")
	}
}

func TestMemoizeComputesOnce(t *testing.T) {
	p := counter(t, 4, inc(4))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	for i := 0; i < 3; i++ {
		v := g.Memoize("test:answer", func() any {
			calls++
			return 42
		})
		if v.(int) != 42 {
			t.Fatalf("value = %v, want 42", v)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	// Distinct keys get distinct slots.
	v := g.Memoize("test:other", func() any { return "x" })
	if v.(string) != "x" {
		t.Errorf("second key returned %v", v)
	}
}

// TestFilteredViewsGetFreshMemos: a view with different edges or fairness
// must not serve the parent's memoized artifacts (and vice versa).
func TestFilteredViewsGetFreshMemos(t *testing.T) {
	p := counter(t, 6, inc(6), cycle(6))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zero := g.SetOf(state.Pred("x eq 0", func(s state.State) bool { return s.Get(0) == 0 }))
	full := g.Reach(zero, nil)
	if full.Count() != 6 {
		t.Fatalf("full reach = %d, want 6", full.Count())
	}
	// A view that cuts every edge out of state 0 makes 0's reach collapse to
	// itself; serving the parent's memoized full-reach here would be wrong.
	stuck := g.FilterEdges(func(from int, e Edge) bool { return from != 0 })
	r := stuck.Reach(zero, nil)
	if r.Count() != 1 {
		t.Errorf("filtered reach = %d, want 1 (memo leaked across views?)", r.Count())
	}
	// And the parent's memo is untouched by the view's queries.
	if again := g.Reach(zero, nil); again.Count() != 6 {
		t.Errorf("parent reach after view query = %d, want 6", again.Count())
	}
	// RestrictFair changes the deadlock set without touching edges.
	noFair := g.RestrictFair(func(action int) bool { return false })
	if noFair.DeadlockSet().Count() != 6 {
		t.Errorf("all-unfair view: deadlocks = %d, want 6", noFair.DeadlockSet().Count())
	}
	if g.DeadlockSet().Count() != 0 {
		t.Errorf("parent deadlock set changed: %d, want 0", g.DeadlockSet().Count())
	}
}
