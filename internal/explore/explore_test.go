package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// counter builds the program over x ∈ 0..n-1 with the given actions.
func counter(t *testing.T, n int, actions ...guarded.Action) *guarded.Program {
	t.Helper()
	sch, err := state.NewSchema(state.IntVar("x", n))
	if err != nil {
		t.Fatal(err)
	}
	return guarded.MustProgram("counter", sch, actions...)
}

func inc(n int) guarded.Action {
	return guarded.Det("inc",
		state.Pred("x<max", func(s state.State) bool { return s.Get(0) < n-1 }),
		func(s state.State) state.State { return s.With(0, s.Get(0)+1) })
}

func cycle(n int) guarded.Action {
	return guarded.Det("cycle", state.True,
		func(s state.State) state.State { return s.With(0, (s.Get(0)+1)%n) })
}

func TestBuildFull(t *testing.T) {
	p := counter(t, 5, inc(5))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Errorf("nodes=%d edges=%d; want 5, 4", g.NumNodes(), g.NumEdges())
	}
	if !g.Deadlocked(mustNode(t, g, 4)) {
		t.Error("x=4 must be deadlocked")
	}
	if g.Deadlocked(mustNode(t, g, 0)) {
		t.Error("x=0 must not be deadlocked")
	}
}

func mustNode(t *testing.T, g *Graph, x int) int {
	t.Helper()
	id, ok := g.NodeOf(state.MustState(g.Program().Schema(), x))
	if !ok {
		t.Fatalf("state x=%d not explored", x)
	}
	return id
}

func TestBuildFromInit(t *testing.T) {
	p := counter(t, 5, inc(5))
	from2 := state.Pred("x=2", func(s state.State) bool { return s.Get(0) == 2 })
	g, err := Build(p, from2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 { // 2, 3, 4
		t.Errorf("nodes=%d; want 3", g.NumNodes())
	}
	if _, ok := g.NodeOf(state.MustState(p.Schema(), 0)); ok {
		t.Error("x=0 must not be explored from x=2")
	}
}

func TestBuildBound(t *testing.T) {
	p := counter(t, 100, inc(100))
	if _, err := Build(p, state.True, Options{MaxStates: 10}); err == nil {
		t.Error("state bound must be enforced")
	}
}

func TestBuildFairMaskValidation(t *testing.T) {
	p := counter(t, 3, inc(3))
	if _, err := Build(p, state.True, Options{Fair: []bool{true, false}}); err == nil {
		t.Error("wrong-length fairness mask must be rejected")
	}
}

func TestReachAndPath(t *testing.T) {
	p := counter(t, 6, inc(6))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	from := NewBitset(g.NumNodes())
	from.Add(mustNode(t, g, 1))
	reach := g.Reach(from, nil)
	if reach.Count() != 5 { // 1..5
		t.Errorf("reach count %d, want 5", reach.Count())
	}
	goal := NewBitset(g.NumNodes())
	goal.Add(mustNode(t, g, 4))
	path, ok := g.PathBetween(from, goal, nil)
	if !ok || len(path) != 4 {
		t.Errorf("path len %d ok=%v, want 4, true", len(path), ok)
	}
	// Avoiding x=3 disconnects 1 from 4.
	within := g.All()
	within.Remove(mustNode(t, g, 3))
	if _, ok := g.PathBetween(from, goal, within); ok {
		t.Error("path should not exist when x=3 is forbidden")
	}
}

func TestSCCsOnCycle(t *testing.T) {
	p := counter(t, 4, cycle(4))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comps := g.SCCs(nil)
	if len(comps) != 1 || len(comps[0]) != 4 {
		t.Errorf("cycle should be one SCC of 4 nodes: %v", comps)
	}
	chain := counter(t, 4, inc(4))
	gc, err := Build(chain, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comps = gc.SCCs(nil)
	if len(comps) != 4 {
		t.Errorf("chain should have 4 singleton SCCs: %v", comps)
	}
}

func TestFairCycleRequiresEnabledActionToRun(t *testing.T) {
	// Two actions: 'cycle' loops through all states; 'escape' is enabled
	// everywhere and leaves to a sink. A weakly fair run cannot cycle
	// forever (escape would be continuously enabled but never taken), so
	// within the cycle states there is no fair cycle.
	sch := state.MustSchema(state.IntVar("x", 3), state.BoolVar("done"))
	notDone := state.Pred("¬done", func(s state.State) bool { return !s.Bool(1) })
	cyc := guarded.Det("cycle", notDone, func(s state.State) state.State {
		return s.With(0, (s.Get(0)+1)%3)
	})
	escape := guarded.Det("escape", notDone, func(s state.State) state.State {
		return s.WithBool(1, true)
	})
	p := guarded.MustProgram("p", sch, cyc, escape)
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if comp := g.FairCycle(g.SetOf(notDone)); comp != nil {
		t.Errorf("no fair cycle should exist while escape is enabled: %v", comp)
	}
	// Without escape, the cycle is fair.
	pOnly := guarded.MustProgram("p", sch, cyc)
	g2, err := Build(pOnly, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if comp := g2.FairCycle(g2.SetOf(notDone)); comp == nil {
		t.Error("pure cycle must contain a fair cycle")
	}
}

func TestUnfairActionsCannotSustainCycles(t *testing.T) {
	// The only loop is through an unfair (fault) action: no fair cycle.
	p := counter(t, 3, cycle(3))
	g, err := Build(p, state.True, Options{Fair: []bool{false}})
	if err != nil {
		t.Fatal(err)
	}
	if comp := g.FairCycle(nil); comp != nil {
		t.Error("unfair edges must not sustain a fair cycle")
	}
	// And unfair-only states count as deadlocked (p-maximality).
	if !g.Deadlocked(0) {
		t.Error("states with only unfair actions enabled are p-deadlocked")
	}
}

func TestCheckEventually(t *testing.T) {
	p := counter(t, 5, inc(5))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := g.SetOf(state.Pred("x=4", func(s state.State) bool { return s.Get(0) == 4 }))
	if v := g.CheckEventually(g.All(), top); v != nil {
		t.Errorf("counter must reach the top: %v", v)
	}
	// Unreachable goal: deadlock violation at the top.
	never := NewBitset(g.NumNodes())
	v := g.CheckEventually(g.All(), never)
	if v == nil || v.Kind != ViolationDeadlock {
		t.Errorf("want deadlock violation, got %v", v)
	}
	// Cycle without escape: livelock violation.
	pc := counter(t, 5, cycle(5))
	gc, err := Build(pc, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v = gc.CheckEventually(gc.All(), never)
	if v == nil || v.Kind != ViolationLivelock || len(v.Cycle) == 0 {
		t.Errorf("want livelock violation with a cycle, got %v", v)
	}
}

func TestCheckEventuallyAlways(t *testing.T) {
	// Goal contains a state that is immediately left again (x=1 under the
	// cycle): EventuallyAlways must use the closed core of the goal.
	p := counter(t, 4, inc(4))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	goal := g.SetOf(state.Pred("x≥1", func(s state.State) bool { return s.Get(0) >= 1 }))
	if v := g.CheckEventuallyAlways(g.All(), goal); v != nil {
		t.Errorf("x≥1 is eventually permanent: %v", v)
	}
	flaky := g.SetOf(state.Pred("x=1", func(s state.State) bool { return s.Get(0) == 1 }))
	if v := g.CheckEventuallyAlways(g.All(), flaky); v == nil {
		t.Error("x=1 is not permanent under inc")
	}
}

func TestLargestClosedSubset(t *testing.T) {
	p := counter(t, 5, inc(5))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	set := g.SetOf(state.Pred("x≥2", func(s state.State) bool { return s.Get(0) >= 2 }))
	closed := g.LargestClosedSubset(set)
	if !closed.SubsetOf(set) || closed.Count() != 3 {
		t.Errorf("closed subset of x≥2 should be itself (3 states), got %d", closed.Count())
	}
	set2 := g.SetOf(state.Pred("x∈{1,3}", func(s state.State) bool { return s.Get(0) == 1 || s.Get(0) == 3 }))
	closed2 := g.LargestClosedSubset(set2)
	if closed2.Count() != 0 {
		t.Errorf("x∈{1,3} has empty closed core, got %d states", closed2.Count())
	}
}

func TestFilterEdgesAndRestrictFair(t *testing.T) {
	p := counter(t, 4, cycle(4))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	noEdges := g.FilterEdges(func(int, Edge) bool { return false })
	if noEdges.NumEdges() != 0 {
		t.Error("filtered graph should have no edges")
	}
	if noEdges.Deadlocked(0) {
		t.Error("filtering edges must not change enabledness/deadlock")
	}
	unfair := g.RestrictFair(func(int) bool { return false })
	if unfair.FairAction(0) {
		t.Error("RestrictFair should demote the action")
	}
}

func TestBitsetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 1 + rng.Intn(200)
		a, b := NewBitset(n), NewBitset(n)
		for i := 0; i < n/2; i++ {
			a.Add(rng.Intn(n))
			b.Add(rng.Intn(n))
		}
		union := a.Clone()
		union.Union(b)
		inter := a.Clone()
		inter.Intersect(b)
		// |A∪B| + |A∩B| = |A| + |B|
		if union.Count()+inter.Count() != a.Count()+b.Count() {
			return false
		}
		// A ⊆ A∪B and A∩B ⊆ A
		if !a.SubsetOf(union) || !inter.SubsetOf(a) {
			return false
		}
		// Complement: |A| + |¬A| = n
		if a.Count()+a.Complement().Count() != n {
			return false
		}
		// Subtract: A \ B disjoint from B
		diff := a.Clone()
		diff.Subtract(b)
		check := diff.Clone()
		check.Intersect(b)
		return check.Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(70)
	b.Add(0)
	b.Add(63)
	b.Add(64)
	b.Add(69)
	if b.Count() != 4 || !b.Has(64) || b.Has(1) {
		t.Error("bitset add/has wrong across word boundary")
	}
	if got := b.Slice(); len(got) != 4 || got[3] != 69 {
		t.Errorf("Slice = %v", got)
	}
	if b.Any() != 0 {
		t.Errorf("Any = %d", b.Any())
	}
	b.Remove(0)
	if b.Has(0) || b.Count() != 3 {
		t.Error("remove failed")
	}
	empty := NewBitset(70)
	if !empty.Empty() || empty.Any() != -1 {
		t.Error("empty bitset misbehaves")
	}
	comp := empty.Complement()
	if comp.Count() != 70 {
		t.Errorf("complement of empty has %d elements, want 70", comp.Count())
	}
}

// TestPathBetweenEdgeCases pins the corner cases of the BFS: an empty (or
// fully out-of-within) source set must report no path without touching the
// parent arrays, and a goal node already inside `from` must yield the
// single-state path.
func TestPathBetweenEdgeCases(t *testing.T) {
	p := counter(t, 6, inc(6))
	g, err := Build(p, state.True, Options{})
	if err != nil {
		t.Fatal(err)
	}
	goal := NewBitset(g.NumNodes())
	goal.Add(mustNode(t, g, 4))

	empty := NewBitset(g.NumNodes())
	if path, ok := g.PathBetween(empty, goal, nil); ok || path != nil {
		t.Errorf("empty from: got path %v ok=%v, want nil,false", path, ok)
	}

	// from nonempty but entirely outside within — same early exit.
	from := NewBitset(g.NumNodes())
	from.Add(mustNode(t, g, 1))
	within := NewBitset(g.NumNodes())
	within.Add(mustNode(t, g, 4))
	if path, ok := g.PathBetween(from, goal, within); ok || path != nil {
		t.Errorf("from outside within: got path %v ok=%v, want nil,false", path, ok)
	}

	// goal ⊆ from: the path is the goal state itself, length 1, no steps.
	both := NewBitset(g.NumNodes())
	both.Add(mustNode(t, g, 2))
	both.Add(mustNode(t, g, 4))
	path, ok := g.PathBetween(both, goal, nil)
	if !ok || len(path) != 1 {
		t.Fatalf("goal inside from: path len %d ok=%v, want 1,true", len(path), ok)
	}
	if path[0].Get(0) != 4 {
		t.Errorf("goal inside from: path ends at x=%d, want 4", path[0].Get(0))
	}
}
