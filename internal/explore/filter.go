package explore

// Filtered views are shallow Graph copies whose edge, fairness, and memo
// fields are rewritten before the view escapes; this file is a sanctioned
// builder for them.
//
//dc:mutates Graph

// filterEdges builds a view of the graph keeping only the out-edges for
// which keep returns true, sharing the state arena, enabledness bitsets, and
// fairness mask. The in-edge CSR is rebuilt only when withIn is set; callers
// that never consult In (the fairness SCC pass) skip it.
func (g *Graph) filterEdges(keep func(from int, e Edge) bool, withIn bool) *Graph {
	ng := *g
	// The view's edge set differs, so none of the parent's memoized
	// artifacts apply to it; give it a fresh memo rather than an alias.
	ng.memo = newGraphMemo()
	off := make([]uint32, g.n+1)
	total := uint32(0)
	for v := 0; v < g.n; v++ {
		for _, e := range g.Out(v) {
			if keep(v, e) {
				total++
			}
		}
		off[v+1] = total
	}
	edges := make([]Edge, 0, total)
	for v := 0; v < g.n; v++ {
		for _, e := range g.Out(v) {
			if keep(v, e) {
				edges = append(edges, e)
			}
		}
	}
	ng.outOff, ng.outEdges = off, edges
	if withIn {
		ng.buildIn()
	} else {
		ng.inOff, ng.inEdges = nil, nil
	}
	return &ng
}

// FilterEdges returns a view of the graph with the same node set but keeping
// only the edges for which keep returns true. The filtered graph shares the
// underlying state arena and the precomputed enabledness/deadlock bitsets:
// filtering restricts which transitions may recur, not which actions exist,
// which is what the refinement and detector checks need.
func (g *Graph) FilterEdges(keep func(from int, e Edge) bool) *Graph {
	return g.filterEdges(keep, true)
}

// RestrictFair returns a view of the graph where only the actions accepted
// by keep are treated as fair (subject to weak fairness and counted for
// maximality). Edges are unchanged; the deadlock set is recomputed from the
// shared per-action enabledness bitsets, since deadlock means "no enabled
// fair action" and the fair set just changed.
func (g *Graph) RestrictFair(keep func(action int) bool) *Graph {
	ng := *g
	// Fairness feeds the deadlock set, fair SCCs, and liveness verdicts;
	// the view needs its own memo.
	ng.memo = newGraphMemo()
	fair := make([]bool, g.numActs)
	for a := range fair {
		fair[a] = g.fair[a] && keep(a)
	}
	ng.fair = fair
	ng.dead = ng.computeDead(fair)
	return &ng
}
