package explore

// FilterEdges returns a view of the graph with the same node set but keeping
// only the edges for which keep returns true. The filtered graph shares the
// underlying states; enabledness (and therefore deadlock and fairness
// checks) still consult the original program's guards, which is what the
// refinement and detector checks need: filtering restricts which transitions
// may recur, not which actions exist.
func (g *Graph) FilterEdges(keep func(from int, e Edge) bool) *Graph {
	out := make([][]Edge, len(g.states))
	for v, edges := range g.out {
		for _, e := range edges {
			if keep(v, e) {
				out[v] = append(out[v], e)
			}
		}
	}
	f := &Graph{
		prog:    g.prog,
		states:  g.states,
		ids:     g.ids,
		out:     out,
		fair:    g.fair,
		numActs: g.numActs,
	}
	f.buildIn()
	return f
}

// RestrictFair returns a view of the graph where only the actions accepted
// by keep are treated as fair (subject to weak fairness and counted for
// maximality). Edges are unchanged.
func (g *Graph) RestrictFair(keep func(action int) bool) *Graph {
	fair := make([]bool, g.numActs)
	for a := range fair {
		fair[a] = g.fair[a] && keep(a)
	}
	return &Graph{
		prog:    g.prog,
		states:  g.states,
		ids:     g.ids,
		out:     g.out,
		in:      g.in,
		fair:    fair,
		numActs: g.numActs,
	}
}
