package explore

import (
	"context"
	"fmt"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// Scan is the streaming counterpart of Build: a breadth-first sweep over the
// compiled kernel that reports states and transitions to caller-supplied
// visitors as they are discovered, without materializing the CSR arenas,
// in-lists, or enabledness bitsets. Counterexample hunts — safety
// violations, closure violations, deadlock probes — terminate at the first
// hit, so they pay for the states visited up to the witness instead of a
// full graph assembly; memory stays O(visited states).

// ScanOptions configure a streaming scan.
type ScanOptions struct {
	// Fair marks program actions, as in Options.Fair: nil means all fair.
	// Fairness only affects the Deadlock visitor (no enabled fair action).
	Fair []bool
	// MaxStates bounds the number of discovered states, exactly as in
	// Options.MaxStates: the scan fails with ErrStateBound iff the number of
	// distinct discovered states exceeds the bound.
	MaxStates int
	// InitOnly restricts the scan to the states satisfying init (ascending
	// index order, no successor closure): each init state is visited and its
	// immediate transitions reported, but targets are not expanded. This is
	// the shape of closure checks — one pass, O(1) memory.
	InitOnly bool
	// MemBudget, SpillDir, and Partitions select the out-of-core path,
	// exactly as in Options: a positive budget bounds the scan's resident
	// set by spilling the visited set and the FIFO frontier to disk, 0
	// defers to SetDefaultSpill, negative forces in-RAM. The spilled scan
	// visits states in the identical FIFO order, so verdicts and witnesses
	// are unchanged. Because a scan never assembles a graph, the budget
	// bounds the whole verdict — this is the path for super-RAM systems.
	MemBudget  int64
	SpillDir   string
	Partitions int
}

// ScanStats summarizes a scan.
type ScanStats struct {
	States  int  // states discovered (InitOnly: init states visited)
	Edges   int  // transitions enumerated
	Stopped bool // a visitor terminated the scan early
}

// Scanner bundles the per-discovery visitors. Each is optional; returning
// false stops the scan (ScanStats.Stopped reports it). The states passed to
// visitors are views into reusable rows valid only for the duration of the
// call — retain one with p.Schema().StateAt(s.Index()).
type Scanner struct {
	// Visit runs once per discovered state, in BFS order (InitOnly:
	// ascending index order), before the state's transitions.
	Visit func(s state.State) bool
	// Edge runs once per enumerated transition, in kernel (action) order.
	// fresh reports that to was discovered by this transition (always false
	// in InitOnly mode).
	Edge func(from, to state.State, action int, fresh bool) bool
	// Deadlock runs for each visited state with no enabled fair action,
	// after Visit and before the state's transitions.
	Deadlock func(s state.State) bool
}

// Scan streams the states reachable from init (or, with InitOnly, exactly
// the init states) through the Scanner. The traversal is deterministic:
// initial states in ascending index order, then a FIFO frontier expanded in
// discovery order with each state's transitions in kernel order — the same
// tie-breaking as the graph path's PathBetween, so first-hit witnesses
// coincide with the graph-derived ones.
func Scan(p *guarded.Program, init state.Predicate, opts ScanOptions, v Scanner) (ScanStats, error) {
	return ScanCtx(context.Background(), p, init, opts, v)
}

// ScanCtx is Scan under a context: cancellation stops the sweep with
// ctx.Err() (not a Stopped stat — the scan did not run to a verdict). The
// context is polled once per visited state, the same granularity as the
// engines behind BuildCtx.
func ScanCtx(ctx context.Context, p *guarded.Program, init state.Predicate, opts ScanOptions, v Scanner) (ScanStats, error) {
	var stats ScanStats
	if err := p.Schema().Indexable(); err != nil {
		return stats, err
	}
	fair := opts.Fair
	if fair == nil {
		fair = make([]bool, p.NumActions())
		for i := range fair {
			fair[i] = true
		}
	}
	if len(fair) != p.NumActions() {
		return stats, fmt.Errorf("explore: fairness mask has %d entries for %d actions", len(fair), p.NumActions())
	}
	k := sharedKernel(p)
	sch := k.Schema()
	total, _ := sch.NumStates()
	sc := k.NewScratch()
	nv := sch.NumVars()
	rowF := make([]int32, nv)
	rowT := make([]int32, nv)
	viewF := sch.ViewState(rowF)
	viewT := sch.ViewState(rowT)
	numActs := k.NumActions()
	var buf []guarded.Succ

	deadlocked := func() bool {
		for a := 0; a < numActs; a++ {
			if fair[a] && sc.EnabledOnRow(rowF, a) {
				return false
			}
		}
		return true
	}
	// expand visits one state (already decoded into rowF) and reports its
	// transitions; claim is nil in InitOnly mode. claim errors — the state
	// bound, spill I/O failure, a corrupt spill file — abort the scan.
	expand := func(idx uint64, claim func(to uint64) (fresh bool, err error)) (cont bool, err error) {
		if stats.States&cancelPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return false, err
			}
		}
		stats.States++
		if v.Visit != nil && !v.Visit(viewF) {
			return false, nil
		}
		if v.Deadlock != nil && deadlocked() && !v.Deadlock(viewF) {
			return false, nil
		}
		if v.Edge == nil && claim == nil {
			return true, nil
		}
		buf = sc.Transitions(idx, buf[:0])
		for _, tr := range buf {
			stats.Edges++
			fresh := false
			if claim != nil {
				var err error
				fresh, err = claim(tr.To)
				if err != nil {
					return false, err
				}
			}
			if v.Edge != nil {
				sch.DecodeInto(rowT, tr.To)
				if !v.Edge(viewF, viewT, int(tr.Action), fresh) {
					return false, nil
				}
			}
		}
		return true, nil
	}

	if opts.InitOnly {
		var scanErr error
		count := 0
		scanInit(sch, init, 0, total, rowF, func(idx uint64) bool {
			count++
			if opts.MaxStates > 0 && count > opts.MaxStates {
				scanErr = boundError(opts.MaxStates)
				return false
			}
			cont, err := expand(idx, nil)
			if err != nil {
				scanErr = err
				return false
			}
			if !cont {
				stats.Stopped = true
				return false
			}
			return true
		})
		return stats, scanErr
	}

	// The FIFO frontier and visited set come in two shapes: in-RAM (a slice
	// and the engines' visitedSet) or disk-spilled under a memory budget.
	// Both preserve the exact same discovery order, so everything above —
	// visitors, witnesses, verdicts — is oblivious to the choice.
	discovered := 0
	var (
		claim func(to uint64) (bool, error)
		next  func() (uint64, bool, error)
	)
	if cfg, ok := resolveSpill(opts.MemBudget, opts.SpillDir, opts.Partitions); ok {
		run, err := newSpillRun(cfg)
		if err != nil {
			return stats, err
		}
		defer run.finish()
		visited := run.newVisited(total)
		frontier := newSpillFrontier(run.dir, int(cfg.budget/4))
		defer frontier.close()
		claim = func(to uint64) (bool, error) {
			fresh, err := visited.claim(to)
			if err != nil || !fresh {
				return false, err
			}
			if opts.MaxStates > 0 && discovered >= opts.MaxStates {
				return false, boundError(opts.MaxStates)
			}
			discovered++
			return true, frontier.push(to)
		}
		next = frontier.pop
	} else {
		visited := newVisitedSet(total)
		var queue []uint64
		head := 0
		claim = func(to uint64) (bool, error) {
			if !visited.claim(to) {
				return false, nil
			}
			if opts.MaxStates > 0 && discovered >= opts.MaxStates {
				return false, boundError(opts.MaxStates)
			}
			discovered++
			queue = append(queue, to)
			return true, nil
		}
		next = func() (uint64, bool, error) {
			if head >= len(queue) {
				return 0, false, nil
			}
			idx := queue[head]
			head++
			return idx, true, nil
		}
	}
	var seedErr error
	seedTick := 0
	scanInit(sch, init, 0, total, rowF, func(idx uint64) bool {
		if seedTick++; seedTick&cancelPollMask == 0 {
			if err := ctx.Err(); err != nil {
				seedErr = err
				return false
			}
		}
		if _, err := claim(idx); err != nil {
			seedErr = err
			return false
		}
		return true
	})
	if seedErr != nil {
		return stats, seedErr
	}
	for {
		idx, ok, err := next()
		if err != nil {
			return stats, err
		}
		if !ok {
			return stats, nil
		}
		sch.DecodeInto(rowF, idx)
		cont, err := expand(idx, claim)
		if err != nil {
			return stats, err
		}
		if !cont {
			stats.Stopped = true
			return stats, nil
		}
	}
}

// FindDeadlock searches for a reachable state with no enabled fair action
// and returns a shortest witness trace from an init state to it (BFS with
// the same tie-breaking as PathBetween on the built graph, so the witness
// matches the graph path exactly). It reports false when every reachable
// state has an enabled fair action. The search streams over the kernel —
// no graph is assembled — and stops at the first deadlock found.
func FindDeadlock(p *guarded.Program, init state.Predicate, opts ScanOptions) ([]state.State, bool, error) {
	return FindDeadlockCtx(context.Background(), p, init, opts)
}

// FindDeadlockCtx is FindDeadlock under a context; cancellation aborts the
// streaming hunt with ctx.Err(). Under a memory budget the BFS parent map
// — the last O(states) structure of the hunt — is replaced by an on-disk
// parent log, and the witness chain is reconstructed by a single reverse
// scan of the log (a parent is always recorded before its children, so one
// backward pass suffices).
func FindDeadlockCtx(ctx context.Context, p *guarded.Program, init state.Predicate, opts ScanOptions) ([]state.State, bool, error) {
	opts.InitOnly = false
	sch := p.Schema()
	var deadIdx uint64
	found := false
	deadlock := func(s state.State) bool {
		deadIdx = s.Index()
		found = true
		return false
	}

	if cfg, ok := resolveSpill(opts.MemBudget, opts.SpillDir, opts.Partitions); ok {
		run, err := newSpillRun(cfg)
		if err != nil {
			return nil, false, err
		}
		defer run.finish()
		log := newParentLog(run.dir, int(cfg.budget/4))
		defer log.close()
		var recErr error
		_, err = ScanCtx(ctx, p, init, opts, Scanner{
			Deadlock: deadlock,
			Edge: func(from, to state.State, action int, fresh bool) bool {
				if fresh {
					if recErr = log.record(to.Index(), from.Index()); recErr != nil {
						return false
					}
				}
				return true
			},
		})
		if recErr != nil {
			return nil, false, recErr
		}
		if err != nil || !found {
			return nil, false, err
		}
		chain, err := log.chain(deadIdx)
		if err != nil {
			return nil, false, err
		}
		states := make([]state.State, len(chain))
		for i, idx := range chain {
			states[i] = sch.StateAt(idx)
		}
		return states, true, nil
	}

	parent := map[uint64]uint64{}
	_, err := ScanCtx(ctx, p, init, opts, Scanner{
		Deadlock: deadlock,
		Edge: func(from, to state.State, action int, fresh bool) bool {
			if fresh {
				parent[to.Index()] = from.Index()
			}
			return true
		},
	})
	if err != nil || !found {
		return nil, false, err
	}
	var rev []state.State
	idx := deadIdx
	for {
		rev = append(rev, sch.StateAt(idx))
		p, ok := parent[idx]
		if !ok {
			break
		}
		idx = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, true, nil
}
