package explore

// The parallel engine assembles the CSR arenas of the Graph it returns;
// this file is a sanctioned builder.
//
//dc:mutates Graph

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// defaultParallelism is the worker count Build uses when Options.Parallelism
// is zero. Zero (the initial value) means sequential; dctl -j, dcbench -j,
// and the benchmarks raise it process-wide so that every graph construction
// in core, fault, spec, and experiments inherits it without threading a
// parameter through each call site.
var defaultParallelism atomic.Int32

// SetDefaultParallelism sets the worker count used by Build calls whose
// Options.Parallelism is zero, returning the previous value (so callers can
// restore it). Values below 1 reset the default to sequential exploration.
func SetDefaultParallelism(n int) int {
	if n < 1 {
		n = 0
	}
	return int(defaultParallelism.Swap(int32(n)))
}

// DefaultParallelism returns the current process-wide default worker count;
// 0 means sequential.
func DefaultParallelism() int { return int(defaultParallelism.Load()) }

// AutoParallelism is the worker count "use every core" CLI flags resolve to.
func AutoParallelism() int { return runtime.NumCPU() }

// workers resolves the effective worker count for a Build call. A worker
// count inherited from the process default degrades to sequential on a
// single-P runtime: the pool cannot overlap work there, so it only adds
// visited-set contention and scheduling overhead (BENCH_kernel.json: Ring7
// parallel 737ms vs sequential 636ms on one core). Explicit Parallelism
// values are honored as written — tests and benchmarks exercise the pool
// deliberately.
func (o Options) workers() int {
	n := o.Parallelism
	if n == 0 {
		n = DefaultParallelism()
		if n > 1 && runtime.GOMAXPROCS(0) == 1 {
			n = 1
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// rawNode is one discovered state before canonical renumbering: its
// mixed-radix index and the span of its outgoing transitions inside the
// owning expansion's flat edge arena. States are not materialized during
// exploration at all — the kernel works on indices, and assemble decodes the
// final sorted arena once.
type rawNode struct {
	idx uint64
	off int   // first out-edge in the owning expansion's edges
	n   int32 // out-degree
}

// expansion is one engine's (or one worker's) discovery arena: nodes plus
// one flat successor slice that the kernel appends into. Using flat arenas
// instead of a per-node []rawEdge removes the per-expanded-state allocation
// the previous engines paid.
type expansion struct {
	nodes []rawNode
	edges []guarded.Succ
}

// denseVisitedLimit bounds the dense visited-set mode: state spaces with at
// most this many states are deduplicated with a flat atomic bitset (32 MiB
// at the limit); larger spaces fall back to sharded hash maps. A variable so
// tests can force the sparse path on small schemas.
var denseVisitedLimit = uint64(1) << 28

// visitedSet deduplicates states by mixed-radix index. claim is safe for
// concurrent use and returns true exactly once per index, handing the caller
// ownership of the state's expansion.
type visitedSet interface {
	claim(idx uint64) bool
}

// denseVisited marks indices in a flat bitset; claim is a lock-free
// compare-and-swap on the containing word.
type denseVisited struct {
	words []uint64
}

func (d *denseVisited) claim(idx uint64) bool {
	w := &d.words[idx>>6]
	bit := uint64(1) << (idx & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			return true
		}
	}
}

// visitedShards is the shard count of the sparse fallback. Shards are padded
// to separate cache lines so claims on different shards do not false-share.
const visitedShards = 64

type sparseVisited struct {
	shards [visitedShards]visitedShard
}

type visitedShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
	_  [40]byte
}

func (s *sparseVisited) claim(idx uint64) bool {
	// Fibonacci hashing spreads consecutive indices across shards.
	sh := &s.shards[(idx*0x9e3779b97f4a7c15)>>58]
	sh.mu.Lock()
	_, seen := sh.m[idx]
	if !seen {
		sh.m[idx] = struct{}{}
	}
	sh.mu.Unlock()
	return !seen
}

func newVisitedSet(total uint64) visitedSet {
	if total <= denseVisitedLimit {
		return &denseVisited{words: make([]uint64, (total+63)/64)}
	}
	s := &sparseVisited{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

func boundError(maxStates int) error {
	return fmt.Errorf("%w: more than %d states", ErrStateBound, maxStates)
}

// scanInit calls fn(idx) for every index in [lo, hi) whose state satisfies
// init, walking the mixed-radix odometer incrementally over a reusable row
// (no per-state allocation). It stops early, reporting false, when fn does.
//
//dc:zeroalloc
func scanInit(sch *state.Schema, init state.Predicate, lo, hi uint64, row []int32, fn func(idx uint64) bool) bool {
	if lo >= hi {
		return true
	}
	sch.DecodeInto(row, lo)
	view := sch.ViewState(row)
	nv := len(row)
	for idx := lo; ; {
		if init.Holds(view) && !fn(idx) {
			return false
		}
		idx++
		if idx >= hi {
			return true
		}
		for i := nv - 1; i >= 0; i-- {
			row[i]++
			if int(row[i]) < sch.Var(i).Domain.Size {
				break
			}
			row[i] = 0
		}
	}
}

// cancelPollMask sets how often the engines poll their context: once per
// (cancelPollMask+1) expanded or scanned states. Each expansion does real
// kernel work, so a few hundred states bounds the cancellation latency to
// microseconds without a per-state Err call on the hot path.
const cancelPollMask = 255

// parallelCrossover is the frontier width below which the parallel engine
// expands a level inline instead of fanning it out: goroutine spawn plus
// the level barrier costs on the order of tens of microseconds, which only
// amortizes once a level carries at least a few hundred expansions.
const parallelCrossover = 256

// exploreSeq is the sequential engine: a scan of the state space for initial
// states followed by a depth-first expansion on the compiled kernel. The
// MaxStates bound is exact: it fails if and only if the number of distinct
// discovered states would exceed the bound, before any extra state or edge
// is recorded. Cancellation is polled every cancelPollMask+1 expansions and
// every cancelPollMask+1 initial-state candidates.
func exploreSeq(ctx context.Context, k *guarded.Kernel, init state.Predicate, maxStates int) ([]expansion, error) {
	sch := k.Schema()
	total, _ := sch.NumStates()
	visited := newVisitedSet(total)
	ex := &expansion{}
	var stack []int
	// claim records a newly discovered state, reporting false when doing so
	// would exceed the bound.
	claim := func(idx uint64) bool {
		if !visited.claim(idx) {
			return true
		}
		if maxStates > 0 && len(ex.nodes) >= maxStates {
			return false
		}
		ex.nodes = append(ex.nodes, rawNode{idx: idx, off: -1})
		stack = append(stack, len(ex.nodes)-1)
		return true
	}
	row := make([]int32, sch.NumVars())
	seedTick := 0
	seedCancelled := false
	if !scanInit(sch, init, 0, total, row, func(idx uint64) bool {
		if seedTick++; seedTick&cancelPollMask == 0 && ctx.Err() != nil {
			seedCancelled = true
			return false
		}
		return claim(idx)
	}) {
		if seedCancelled {
			return nil, ctx.Err()
		}
		return nil, boundError(maxStates)
	}
	sc := k.NewScratch()
	for steps := 0; len(stack) > 0; steps++ {
		if steps&cancelPollMask == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		off := len(ex.edges)
		ex.edges = sc.Transitions(ex.nodes[ni].idx, ex.edges)
		for _, tr := range ex.edges[off:] {
			if !claim(tr.To) {
				return nil, boundError(maxStates)
			}
		}
		ex.nodes[ni].off = off
		ex.nodes[ni].n = int32(len(ex.edges) - off)
	}
	return []expansion{*ex}, nil
}

// exploreParallel is the worker-pool engine. Phase 1 scans disjoint chunks
// of the index space for initial states; phase 2 runs a level-synchronous
// BFS where workers expand frontier chunks concurrently on per-worker kernel
// scratches and deduplicate through the shared visited set. Discovery order
// varies with the schedule, but every state is expanded exactly once (by
// whichever worker claims it) and the kernel is a pure function of the
// index, so the rawNode set — and after canonical renumbering, the Graph —
// is schedule-independent. Cancellation rides the same abort mechanism as
// the state bound: a watcher goroutine flips a flag all workers poll.
func exploreParallel(ctx context.Context, k *guarded.Kernel, init state.Predicate, maxStates, workers int) ([]expansion, error) {
	sch := k.Schema()
	total, _ := sch.NumStates()
	visited := newVisitedSet(total)
	var (
		count     atomic.Int64
		exceeded  atomic.Bool
		cancelled atomic.Bool
	)
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-done:
				cancelled.Store(true)
			case <-stop:
			}
		}()
	}
	// claim reports whether idx is newly discovered, flipping the abort flag
	// when the discovery count passes the bound; all workers poll the flag
	// and wind down, so the bound aborts the whole pool.
	claim := func(idx uint64) bool {
		if !visited.claim(idx) {
			return false
		}
		if maxStates > 0 && count.Add(1) > int64(maxStates) {
			exceeded.Store(true)
		}
		return true
	}

	// Phase 1: scan the index space for initial states.
	var frontier []uint64
	{
		chunks := uint64(workers * 8)
		if chunks > total {
			chunks = total
		}
		if chunks < 1 {
			chunks = 1
		}
		chunkSize := (total + chunks - 1) / chunks
		var next atomic.Int64
		local := make([][]uint64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				row := make([]int32, sch.NumVars())
				for {
					lo := uint64(next.Add(1)-1) * chunkSize
					if lo >= total {
						return
					}
					hi := lo + chunkSize
					if hi > total {
						hi = total
					}
					tick := 0
					scanInit(sch, init, lo, hi, row, func(idx uint64) bool {
						if exceeded.Load() {
							return false
						}
						if tick++; tick&cancelPollMask == 0 && cancelled.Load() {
							return false
						}
						if claim(idx) {
							local[w] = append(local[w], idx)
						}
						return true
					})
					if exceeded.Load() || cancelled.Load() {
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, l := range local {
			frontier = append(frontier, l...)
		}
	}

	// Phase 2: level-synchronous frontier expansion. Levels narrower than
	// the crossover expand inline on the calling goroutine: below it, the
	// per-level pool spawn and barrier cost more than the expansions they
	// distribute (measured crossover on this workload is well under 256
	// states — see EXPERIMENTS.md §parallel). The inline path claims
	// through the same shared visited set, so it composes freely with
	// pooled levels; canonical renumbering keeps the graph identical.
	perWorker := make([]expansion, workers)
	scratches := make([]*guarded.Scratch, workers)
	for w := range scratches {
		scratches[w] = k.NewScratch()
	}
	var narrow []uint64
	for len(frontier) > 0 && !exceeded.Load() && !cancelled.Load() {
		if len(frontier) < parallelCrossover {
			ex := &perWorker[0]
			sc := scratches[0]
			narrow = narrow[:0]
			for step, idx := range frontier {
				if step&cancelPollMask == 0 && (exceeded.Load() || cancelled.Load()) {
					break
				}
				off := len(ex.edges)
				ex.edges = sc.Transitions(idx, ex.edges)
				for _, tr := range ex.edges[off:] {
					if claim(tr.To) {
						narrow = append(narrow, tr.To)
					}
				}
				ex.nodes = append(ex.nodes, rawNode{idx: idx, off: off, n: int32(len(ex.edges) - off)})
			}
			frontier, narrow = narrow, frontier
			continue
		}
		chunkSize := len(frontier)/(workers*4) + 1
		numChunks := (len(frontier) + chunkSize - 1) / chunkSize
		var next atomic.Int64
		local := make([][]uint64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ex := &perWorker[w]
				sc := scratches[w]
				for {
					c := int(next.Add(1) - 1)
					if c >= numChunks {
						return
					}
					hi := (c + 1) * chunkSize
					if hi > len(frontier) {
						hi = len(frontier)
					}
					for _, idx := range frontier[c*chunkSize : hi] {
						if exceeded.Load() || cancelled.Load() {
							return
						}
						off := len(ex.edges)
						ex.edges = sc.Transitions(idx, ex.edges)
						for _, tr := range ex.edges[off:] {
							if claim(tr.To) {
								local[w] = append(local[w], tr.To)
							}
						}
						ex.nodes = append(ex.nodes, rawNode{idx: idx, off: off, n: int32(len(ex.edges) - off)})
					}
				}
			}(w)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, l := range local {
			frontier = append(frontier, l...)
		}
	}
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	if exceeded.Load() {
		return nil, boundError(maxStates)
	}
	return perWorker, nil
}

// nodeRef locates one discovered node inside the engines' expansions during
// canonical renumbering.
type nodeRef struct {
	idx uint64
	ch  uint32 // expansion
	pos uint32 // position inside the expansion's node list
}

// assemble renumbers the discovered states canonically — node ids ascend
// with the states' mixed-radix indices — decodes the state arena, resolves
// edge targets by binary search over the sorted index array, and precomputes
// the per-action enabled bitsets and the deadlock set. The result is
// byte-for-byte identical for any engine and schedule.
func assemble(k *guarded.Kernel, fair []bool, exps []expansion) *Graph {
	sch := k.Schema()
	n, totalE := 0, 0
	for i := range exps {
		n += len(exps[i].nodes)
		totalE += len(exps[i].edges)
	}
	refs := make([]nodeRef, 0, n)
	for ci := range exps {
		for pi := range exps[ci].nodes {
			refs = append(refs, nodeRef{idx: exps[ci].nodes[pi].idx, ch: uint32(ci), pos: uint32(pi)})
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i].idx < refs[j].idx })

	nv := sch.NumVars()
	g := &Graph{
		prog:    k.Program(),
		schema:  sch,
		nv:      nv,
		n:       n,
		vals:    make([]int32, n*nv),
		idxs:    make([]uint64, n),
		fair:    fair,
		numActs: k.NumActions(),
		memo:    newGraphMemo(),
	}
	for i := range refs {
		g.idxs[i] = refs[i].idx
		sch.DecodeInto(g.vals[i*nv:(i+1)*nv], refs[i].idx)
	}
	// Edge targets resolve index→id once per edge. When the state space is
	// not much larger than the explored graph, a direct lookup table (4
	// bytes per schema state) beats the per-edge binary search.
	total, _ := sch.NumStates()
	var lut []uint32
	if total <= 16*uint64(n)+(1<<16) {
		lut = make([]uint32, total)
		for i, idx := range g.idxs {
			lut[idx] = uint32(i)
		}
	}
	resolve := func(idx uint64) int {
		if lut != nil {
			if id := int(lut[idx]); g.idxs[id] == idx {
				return id
			}
		} else if id, ok := g.idOf(idx); ok {
			return id
		}
		panic(fmt.Sprintf("explore: edge target %d not among discovered states", idx))
	}
	// Out-edge CSR: degree prefix sums, then resolve targets id-by-id.
	g.outOff = make([]uint32, n+1)
	for i := range refs {
		node := &exps[refs[i].ch].nodes[refs[i].pos]
		g.outOff[i+1] = g.outOff[i] + uint32(node.n)
	}
	g.outEdges = make([]Edge, totalE)
	for i := range refs {
		node := &exps[refs[i].ch].nodes[refs[i].pos]
		succ := exps[refs[i].ch].edges[node.off : node.off+int(node.n)]
		base := g.outOff[i]
		for j, tr := range succ {
			g.outEdges[int(base)+j] = Edge{Action: int(tr.Action), To: resolve(tr.To)}
		}
	}
	g.buildIn()
	// Per-action enabledness and the deadlock set, straight off the arena.
	sc := k.NewScratch()
	g.enabled = make([]*Bitset, g.numActs)
	for a := 0; a < g.numActs; a++ {
		g.enabled[a] = NewBitset(n)
	}
	for i := 0; i < n; i++ {
		row := g.vals[i*nv : (i+1)*nv]
		for a := 0; a < g.numActs; a++ {
			if sc.EnabledOnRow(row, a) {
				g.enabled[a].Add(i)
			}
		}
	}
	g.dead = g.computeDead(fair)
	return g
}

// computeDead derives the deadlock set from the per-action enabled bitsets
// under the given fairness mask: a node is deadlocked iff no fair action is
// enabled there.
func (g *Graph) computeDead(fair []bool) *Bitset {
	dead := NewBitset(g.n)
	dead.Fill()
	for a, f := range fair {
		if f {
			dead.IntersectNot(g.enabled[a])
		}
	}
	return dead
}
