package explore

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"detcorr/internal/guarded"
	"detcorr/internal/state"
)

// defaultParallelism is the worker count Build uses when Options.Parallelism
// is zero. Zero (the initial value) means sequential; dctl -j, dcbench -j,
// and the benchmarks raise it process-wide so that every graph construction
// in core, fault, spec, and experiments inherits it without threading a
// parameter through each call site.
var defaultParallelism atomic.Int32

// SetDefaultParallelism sets the worker count used by Build calls whose
// Options.Parallelism is zero, returning the previous value (so callers can
// restore it). Values below 1 reset the default to sequential exploration.
func SetDefaultParallelism(n int) int {
	if n < 1 {
		n = 0
	}
	return int(defaultParallelism.Swap(int32(n)))
}

// DefaultParallelism returns the current process-wide default worker count;
// 0 means sequential.
func DefaultParallelism() int { return int(defaultParallelism.Load()) }

// AutoParallelism is the worker count "use every core" CLI flags resolve to.
func AutoParallelism() int { return runtime.NumCPU() }

// workers resolves the effective worker count for a Build call.
func (o Options) workers() int {
	n := o.Parallelism
	if n == 0 {
		n = DefaultParallelism()
	}
	if n < 1 {
		n = 1
	}
	return n
}

// rawNode is one discovered state before canonical renumbering: its
// mixed-radix index, the state itself, and its outgoing transitions with
// targets addressed by state index rather than node id. Both engines produce
// []rawNode; assemble sorts by index and resolves ids, which is what makes
// the result independent of discovery order.
type rawNode struct {
	idx uint64
	st  state.State
	out []rawEdge
}

// rawEdge is a transition to the state with index `to`, produced by the
// action with the given index.
type rawEdge struct {
	action int
	to     uint64
}

// denseVisitedLimit bounds the dense visited-set mode: state spaces with at
// most this many states are deduplicated with a flat atomic bitset (32 MiB
// at the limit); larger spaces fall back to sharded hash maps. A variable so
// tests can force the sparse path on small schemas.
var denseVisitedLimit = uint64(1) << 28

// visitedSet deduplicates states by mixed-radix index. claim is safe for
// concurrent use and returns true exactly once per index, handing the caller
// ownership of the state's expansion.
type visitedSet interface {
	claim(idx uint64) bool
}

// denseVisited marks indices in a flat bitset; claim is a lock-free
// compare-and-swap on the containing word.
type denseVisited struct {
	words []uint64
}

func (d *denseVisited) claim(idx uint64) bool {
	w := &d.words[idx>>6]
	bit := uint64(1) << (idx & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			return true
		}
	}
}

// visitedShards is the shard count of the sparse fallback. Shards are padded
// to separate cache lines so claims on different shards do not false-share.
const visitedShards = 64

type sparseVisited struct {
	shards [visitedShards]visitedShard
}

type visitedShard struct {
	mu sync.Mutex
	m  map[uint64]struct{}
	_  [40]byte
}

func (s *sparseVisited) claim(idx uint64) bool {
	// Fibonacci hashing spreads consecutive indices across shards.
	sh := &s.shards[(idx*0x9e3779b97f4a7c15)>>58]
	sh.mu.Lock()
	_, seen := sh.m[idx]
	if !seen {
		sh.m[idx] = struct{}{}
	}
	sh.mu.Unlock()
	return !seen
}

func newVisitedSet(total uint64) visitedSet {
	if total <= denseVisitedLimit {
		return &denseVisited{words: make([]uint64, (total+63)/64)}
	}
	s := &sparseVisited{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64]struct{})
	}
	return s
}

func boundError(maxStates int) error {
	return fmt.Errorf("%w: more than %d states", ErrStateBound, maxStates)
}

// exploreSeq is the sequential engine: a scan of the state space for initial
// states followed by a depth-first expansion. The MaxStates bound is exact:
// it fails if and only if the number of distinct discovered states would
// exceed the bound, before any extra state or edge is recorded.
func exploreSeq(p *guarded.Program, init state.Predicate, maxStates int) ([]rawNode, error) {
	total, _ := p.Schema().NumStates()
	visited := newVisitedSet(total)
	var (
		nodes []rawNode
		stack []int
	)
	// claim records a newly discovered state, reporting false when doing so
	// would exceed the bound.
	claim := func(idx uint64, s state.State) bool {
		if !visited.claim(idx) {
			return true
		}
		if maxStates > 0 && len(nodes) >= maxStates {
			return false
		}
		nodes = append(nodes, rawNode{idx: idx, st: s})
		stack = append(stack, len(nodes)-1)
		return true
	}
	exceeded := false
	err := p.Schema().ForEachState(func(s state.State) bool {
		if init.Holds(s) && !claim(s.Index(), s) {
			exceeded = true
			return false
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if exceeded {
		return nil, boundError(maxStates)
	}
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		trs := p.Successors(nodes[ni].st)
		out := make([]rawEdge, 0, len(trs))
		for _, tr := range trs {
			idx := tr.To.Index()
			if !claim(idx, tr.To) {
				return nil, boundError(maxStates)
			}
			out = append(out, rawEdge{action: tr.Action, to: idx})
		}
		nodes[ni].out = out
	}
	return nodes, nil
}

// exploreParallel is the worker-pool engine. Phase 1 scans disjoint chunks
// of the index space for initial states; phase 2 runs a level-synchronous
// BFS where workers expand frontier chunks concurrently and deduplicate
// through the shared visited set. Discovery order varies with the schedule,
// but every state is expanded exactly once (by whichever worker claims it)
// and Successors is a pure function of the state, so the rawNode set — and
// after canonical renumbering, the Graph — is schedule-independent.
func exploreParallel(p *guarded.Program, init state.Predicate, maxStates, workers int) ([]rawNode, error) {
	sch := p.Schema()
	total, _ := sch.NumStates()
	visited := newVisitedSet(total)
	var (
		count    atomic.Int64
		exceeded atomic.Bool
	)
	// claim reports whether idx is newly discovered, flipping the abort flag
	// when the discovery count passes the bound; all workers poll the flag
	// and wind down, so the bound aborts the whole pool.
	claim := func(idx uint64) bool {
		if !visited.claim(idx) {
			return false
		}
		if maxStates > 0 && count.Add(1) > int64(maxStates) {
			exceeded.Store(true)
		}
		return true
	}

	type item struct {
		idx uint64
		st  state.State
	}

	// Phase 1: scan the index space for initial states.
	var frontier []item
	{
		chunks := uint64(workers * 8)
		if chunks > total {
			chunks = total
		}
		if chunks < 1 {
			chunks = 1
		}
		chunkSize := (total + chunks - 1) / chunks
		var next atomic.Int64
		local := make([][]item, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					lo := uint64(next.Add(1)-1) * chunkSize
					if lo >= total {
						return
					}
					hi := lo + chunkSize
					if hi > total {
						hi = total
					}
					for idx := lo; idx < hi; idx++ {
						if exceeded.Load() {
							return
						}
						s := sch.StateAt(idx)
						if init.Holds(s) && claim(idx) {
							local[w] = append(local[w], item{idx, s})
						}
					}
				}
			}(w)
		}
		wg.Wait()
		for _, l := range local {
			frontier = append(frontier, l...)
		}
	}

	// Phase 2: level-synchronous frontier expansion.
	perWorker := make([][]rawNode, workers)
	for len(frontier) > 0 && !exceeded.Load() {
		chunkSize := len(frontier)/(workers*4) + 1
		numChunks := (len(frontier) + chunkSize - 1) / chunkSize
		var next atomic.Int64
		local := make([][]item, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					c := int(next.Add(1) - 1)
					if c >= numChunks {
						return
					}
					hi := (c + 1) * chunkSize
					if hi > len(frontier) {
						hi = len(frontier)
					}
					for _, it := range frontier[c*chunkSize : hi] {
						if exceeded.Load() {
							return
						}
						trs := p.Successors(it.st)
						out := make([]rawEdge, 0, len(trs))
						for _, tr := range trs {
							idx := tr.To.Index()
							if claim(idx) {
								local[w] = append(local[w], item{idx, tr.To})
							}
							out = append(out, rawEdge{action: tr.Action, to: idx})
						}
						perWorker[w] = append(perWorker[w], rawNode{idx: it.idx, st: it.st, out: out})
					}
				}
			}(w)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, l := range local {
			frontier = append(frontier, l...)
		}
	}
	if exceeded.Load() {
		return nil, boundError(maxStates)
	}
	var nodes []rawNode
	for _, l := range perWorker {
		nodes = append(nodes, l...)
	}
	return nodes, nil
}

// assemble renumbers the discovered states canonically — node ids ascend
// with the states' mixed-radix indices — and resolves edge targets, making
// the resulting graph byte-for-byte identical for any engine and schedule.
func assemble(p *guarded.Program, fair []bool, nodes []rawNode) *Graph {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].idx < nodes[j].idx })
	g := &Graph{
		prog:    p,
		ids:     make(map[uint64]int, len(nodes)),
		states:  make([]state.State, len(nodes)),
		out:     make([][]Edge, len(nodes)),
		fair:    fair,
		numActs: p.NumActions(),
	}
	for i := range nodes {
		g.ids[nodes[i].idx] = i
		g.states[i] = nodes[i].st
	}
	for i := range nodes {
		if len(nodes[i].out) == 0 {
			continue
		}
		es := make([]Edge, len(nodes[i].out))
		for k, re := range nodes[i].out {
			es[k] = Edge{Action: re.action, To: g.ids[re.to]}
		}
		g.out[i] = es
	}
	g.buildIn()
	return g
}
