package explore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"detcorr/internal/state"
)

// --- spill file layer -------------------------------------------------------

func TestRunWriterReaderRoundtrip(t *testing.T) {
	cases := []struct {
		name     string
		records  int
		bufBytes int
	}{
		{"ram-tail-only", 50, 1 << 16},
		{"multi-chunk", 5000, 8 * spillMinBufRecords},
		{"exact-chunk-boundary", 4 * spillMinBufRecords, 8 * spillMinBufRecords},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := newRunWriter(t.TempDir(), "test", 8, tc.bufBytes)
			defer w.remove()
			var rec [8]byte
			for i := 0; i < tc.records; i++ {
				putUint64(&rec, uint64(i)*3)
				if err := w.push(rec[:]); err != nil {
					t.Fatal(err)
				}
			}
			r, err := w.reader()
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.records; i++ {
				got, ok, err := r.next()
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("record %d: premature end", i)
				}
				if v := leUint64(got); v != uint64(i)*3 {
					t.Fatalf("record %d: got %d, want %d", i, v, uint64(i)*3)
				}
			}
			if _, ok, err := r.next(); ok || err != nil {
				t.Fatalf("after last record: ok=%v err=%v", ok, err)
			}
		})
	}
}

func TestSpillFrontierFIFO(t *testing.T) {
	// A tiny buffer forces every level onto disk; the pop order must still be
	// the exact global push order (the in-RAM engines' FIFO contract).
	f := newSpillFrontier(t.TempDir(), 1) // floors to spillMinBufRecords records
	defer f.close()
	var want []uint64
	pushed := 0
	push := func(v uint64) {
		if err := f.push(v); err != nil {
			t.Fatal(err)
		}
		want = append(want, v)
		pushed++
	}
	// Interleave pushes and pops the way a BFS does.
	for i := 0; i < 300; i++ {
		push(uint64(i))
	}
	var got []uint64
	for len(got) < 3000 {
		idx, ok, err := f.pop()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		got = append(got, idx)
		// Each popped "state" spawns a successor while under the cap.
		if pushed < 3000 {
			push(idx + 10000)
		}
	}
	if f.pending != 0 {
		t.Fatalf("pending = %d after drain", f.pending)
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d records, pushed %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pop %d: got %d, want %d (FIFO order violated)", i, got[i], want[i])
		}
	}
}

func TestSpillCorruptFlushDetected(t *testing.T) {
	// testCorruptFlush simulates a torn write on every flushed chunk: the
	// reader must surface ErrSpillCorrupt, never hand back wrong records.
	testCorruptFlush = func(payload []byte) { payload[len(payload)/2] ^= 0x40 }
	defer func() { testCorruptFlush = nil }()
	w := newRunWriter(t.TempDir(), "torn", 8, spillMinBufRecords*8)
	defer w.remove()
	var rec [8]byte
	for i := 0; i < 10*spillMinBufRecords; i++ {
		putUint64(&rec, uint64(i))
		if err := w.push(rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	r, err := w.reader()
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := r.next()
		if err != nil {
			if !errors.Is(err, ErrSpillCorrupt) {
				t.Fatalf("got %v, want ErrSpillCorrupt", err)
			}
			return
		}
		if !ok {
			t.Fatal("reader ended cleanly over corrupted chunks")
		}
	}
}

func TestSpillTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	w := newRunWriter(dir, "trunc", 8, spillMinBufRecords*8)
	defer w.remove()
	var rec [8]byte
	for i := 0; i < 10*spillMinBufRecords; i++ {
		putUint64(&rec, uint64(i))
		if err := w.push(rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.flush(); err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-chunk, as a crashed or out-of-space write would.
	st, err := w.f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(filepath.Join(dir, st.Name()), st.Size()-13); err != nil {
		t.Fatal(err)
	}
	r, err := w.reader()
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, ok, err := r.next()
		if err != nil {
			if !errors.Is(err, ErrSpillCorrupt) {
				t.Fatalf("got %v, want ErrSpillCorrupt", err)
			}
			return
		}
		if !ok {
			t.Fatal("reader ended cleanly over a truncated run")
		}
	}
}

func TestParentLogChain(t *testing.T) {
	// A known BFS tree recorded across several flushed chunks plus an in-RAM
	// tail: chain must reconstruct root → leaf exactly.
	l := newParentLog(t.TempDir(), 1) // floors to the minimum buffer
	defer l.close()
	// Chain 0 → 1 → 2 → … → 999 interleaved with decoy siblings.
	for child := uint64(1); child < 1000; child++ {
		if err := l.record(child, child-1); err != nil {
			t.Fatal(err)
		}
		if err := l.record(child+100000, child-1); err != nil { // sibling
			t.Fatal(err)
		}
	}
	chain, err := l.chain(999)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1000 {
		t.Fatalf("chain length %d, want 1000", len(chain))
	}
	for i, v := range chain {
		if v != uint64(i) {
			t.Fatalf("chain[%d] = %d, want %d", i, v, i)
		}
	}
}

// --- spill visited layer ----------------------------------------------------

func TestShardedVisitedClaimsOnce(t *testing.T) {
	ResetSpillCounters()
	pt := newSpillPartitioner(1<<20, 4)
	s := newShardedVisited(t.TempDir(), pt, spillMinBudget/2)
	// Claim a pseudo-random but replayable sequence with duplicates; every
	// index must be granted exactly once, however the layers compact.
	const n = 40000
	seen := map[uint64]bool{}
	x := uint64(12345)
	for i := 0; i < 2*n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		idx := (x >> 20) % (1 << 20)
		fresh, err := s.claim(idx)
		if err != nil {
			t.Fatal(err)
		}
		if fresh == seen[idx] {
			t.Fatalf("claim(%d) = %v on occurrence with seen=%v", idx, fresh, seen[idx])
		}
		seen[idx] = true
	}
	if s.merges == 0 {
		t.Fatal("expected shard-file merges at this volume")
	}
	if s.probes == 0 {
		t.Fatal("expected disk probes for revisits after merges")
	}
	s.finish()
	c := SpillCounters()
	if c.FrontHits == 0 || c.FrontMisses == 0 || c.ShardMerges == 0 || c.ShardProbes == 0 {
		t.Fatalf("finish must fold counters, got %+v", c)
	}
}

func TestDensePartitionWordAlignment(t *testing.T) {
	// Partition blocks must be multiples of 64 so dense-bitset words are
	// never shared between owners.
	for _, total := range []uint64{100, 1 << 10, 1 << 20, 387420489} {
		for _, parts := range []int{1, 3, 64, 1000} {
			pt := newSpillPartitioner(total, parts)
			if pt.block%64 != 0 || pt.block == 0 {
				t.Fatalf("total=%d parts=%d: block %d not a positive multiple of 64", total, parts, pt.block)
			}
		}
	}
}

// --- engine equivalence through the public API ------------------------------

// spillGraphEqual asserts two graphs built by different engines are
// byte-identical in every observable dimension (the difftest package holds
// the cross-package suite; this in-package copy avoids an import cycle).
func spillGraphEqual(t *testing.T, ref, g *Graph) {
	t.Helper()
	if ref.NumNodes() != g.NumNodes() || ref.NumEdges() != g.NumEdges() {
		t.Fatalf("shape differs: %d/%d nodes, %d/%d edges",
			ref.NumNodes(), g.NumNodes(), ref.NumEdges(), g.NumEdges())
	}
	for id := 0; id < ref.NumNodes(); id++ {
		if !ref.State(id).Equal(g.State(id)) {
			t.Fatalf("node %d: states differ: %s vs %s", id, ref.State(id), g.State(id))
		}
		ro, go_ := ref.Out(id), g.Out(id)
		if len(ro) != len(go_) {
			t.Fatalf("node %d: out-degree differs", id)
		}
		for i := range ro {
			if ro[i] != go_[i] {
				t.Fatalf("node %d edge %d: %+v vs %+v", id, i, ro[i], go_[i])
			}
		}
		if ref.Deadlocked(id) != g.Deadlocked(id) {
			t.Fatalf("node %d: deadlock flags differ", id)
		}
	}
}

func TestBuildSpilledMatchesInRAM(t *testing.T) {
	p := counter(t, 4000, inc(4000), cycle(4000))
	ref, err := Build(p, state.True, Options{MemBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []Options{
		{MemBudget: spillMinBudget},                                // dense visited, spilling frontier
		{MemBudget: spillMinBudget, Parallelism: 3},                // partition-owned workers
		{MemBudget: spillMinBudget, Parallelism: 3, Partitions: 5}, // parts not divisible by workers
		{MemBudget: 1 << 24},                                       // everything under budget: no disk
	} {
		tc.SpillDir = t.TempDir()
		g, err := Build(p, state.True, tc)
		if err != nil {
			t.Fatalf("%+v: %v", tc, err)
		}
		spillGraphEqual(t, ref, g)
	}
}

func TestBuildSpilledShardedVisited(t *testing.T) {
	// 300000 states need a 37.5 KB bitset — over the minimum budget's
	// visited share — so this run exercises the Bloom-fronted shard files.
	p := counter(t, 300000, cycle(300000))
	ref, err := Build(p, state.True, Options{MemBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	ResetSpillCounters()
	g, err := Build(p, state.True, Options{MemBudget: spillMinBudget, SpillDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	spillGraphEqual(t, ref, g)
	if c := SpillCounters(); c.FrontMisses == 0 {
		t.Errorf("sharded run should record Bloom front misses, got %+v", c)
	}
}

func TestScanSpilledMatchesInRAM(t *testing.T) {
	p := counter(t, 5000, inc(5000), cycle(5000))
	_, ram := runScan(t, p, state.True, ScanOptions{MemBudget: -1})
	ResetSpillCounters()
	_, spilled := runScan(t, p, state.True, ScanOptions{MemBudget: spillMinBudget, SpillDir: t.TempDir()})
	if len(ram.visits) != len(spilled.visits) {
		t.Fatalf("visit counts differ: %d vs %d", len(ram.visits), len(spilled.visits))
	}
	for i := range ram.visits {
		if ram.visits[i] != spilled.visits[i] {
			t.Fatalf("visit %d differs: %d vs %d (FIFO order must match)", i, ram.visits[i], spilled.visits[i])
		}
	}
	if len(ram.edges) != len(spilled.edges) {
		t.Fatalf("edge counts differ: %d vs %d", len(ram.edges), len(spilled.edges))
	}
	for i := range ram.edges {
		if ram.edges[i] != spilled.edges[i] || ram.fresh[i] != spilled.fresh[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	if c := SpillCounters(); c.FrontierRuns == 0 {
		t.Errorf("a 5000-state frontier must spill under the minimum budget, got %+v", c)
	}
}

func TestFindDeadlockSpilledWitnessMatches(t *testing.T) {
	p := counter(t, 3000, inc(3000))
	init := state.Pred("x le 1", func(s state.State) bool { return s.Get(0) <= 1 })
	ram, found, err := FindDeadlock(p, init, ScanOptions{MemBudget: -1})
	if err != nil || !found {
		t.Fatalf("in-RAM hunt: found=%v err=%v", found, err)
	}
	spilled, found, err := FindDeadlock(p, init, ScanOptions{MemBudget: spillMinBudget, SpillDir: t.TempDir()})
	if err != nil || !found {
		t.Fatalf("spilled hunt: found=%v err=%v", found, err)
	}
	if len(ram) != len(spilled) {
		t.Fatalf("witness lengths differ: %d vs %d", len(ram), len(spilled))
	}
	for i := range ram {
		if !ram[i].Equal(spilled[i]) {
			t.Fatalf("witness[%d] differs: %s vs %s", i, ram[i], spilled[i])
		}
	}
}

func TestSpilledScanCorruptRunFails(t *testing.T) {
	// End to end: a torn frontier run must abort the verdict with
	// ErrSpillCorrupt — a damaged spill can fail a scan, never skew it.
	testCorruptFlush = func(payload []byte) { payload[0] ^= 0x01 }
	defer func() { testCorruptFlush = nil }()
	p := counter(t, 5000, cycle(5000))
	_, err := Scan(p, state.True, ScanOptions{MemBudget: spillMinBudget, SpillDir: t.TempDir()}, Scanner{})
	if !errors.Is(err, ErrSpillCorrupt) {
		t.Fatalf("got %v, want ErrSpillCorrupt", err)
	}
}

func TestSpilledMaxStates(t *testing.T) {
	p := counter(t, 5000, cycle(5000))
	for _, par := range []int{1, 3} {
		opts := Options{MemBudget: spillMinBudget, SpillDir: t.TempDir(), MaxStates: 17, Parallelism: par}
		if _, err := Build(p, state.True, opts); !errors.Is(err, ErrStateBound) {
			t.Fatalf("parallelism %d: got %v, want ErrStateBound", par, err)
		}
		// The bound is exact: exactly MaxStates states must succeed.
		opts.MaxStates = 5000
		if _, err := Build(p, state.True, opts); err != nil {
			t.Fatalf("parallelism %d: exact bound failed: %v", par, err)
		}
	}
	if _, err := Scan(p, state.True, ScanOptions{MemBudget: spillMinBudget, MaxStates: 17}, Scanner{}); !errors.Is(err, ErrStateBound) {
		t.Fatalf("spilled scan: got %v, want ErrStateBound", err)
	}
}

func TestSpilledBuildCancel(t *testing.T) {
	p := counter(t, 100000, cycle(100000))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildCtx(ctx, p, state.True, Options{MemBudget: spillMinBudget}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestDefaultSpill(t *testing.T) {
	pb, pd := SetDefaultSpill(spillMinBudget, t.TempDir())
	defer SetDefaultSpill(pb, pd)
	p := counter(t, 5000, cycle(5000))
	ResetSpillCounters()
	// MemBudget 0 inherits the process default and spills…
	if _, err := Scan(p, state.True, ScanOptions{}, Scanner{}); err != nil {
		t.Fatal(err)
	}
	if c := SpillCounters(); c.FrontierRuns == 0 {
		t.Errorf("default budget must engage the spill path, got %+v", c)
	}
	// …while a negative budget forces the in-RAM engines despite it.
	ResetSpillCounters()
	if _, err := Scan(p, state.True, ScanOptions{MemBudget: -1}, Scanner{}); err != nil {
		t.Fatal(err)
	}
	if c := SpillCounters(); c.FrontierRuns != 0 {
		t.Errorf("MemBudget<0 must stay in RAM, got %+v", c)
	}
}

func TestSpillRunCleansUp(t *testing.T) {
	dir := t.TempDir()
	p := counter(t, 5000, cycle(5000))
	if _, err := Build(p, state.True, Options{MemBudget: spillMinBudget, SpillDir: dir, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not cleaned up: %d entries remain", len(ents))
	}
}
