package explore

// Spill files: the on-disk building blocks of the out-of-core engine. Both
// the BFS frontier and the sharded visited set serialize fixed-width records
// (8-byte little-endian state indices, 16-byte parent pairs) into append-only
// run files, written and read strictly sequentially. Every flush emits one
// self-describing chunk — magic, record count, CRC-32 of the payload — so a
// torn or truncated file is detected at read time and surfaces as a clean
// ErrSpillCorrupt instead of a silently wrong verdict. The frontier is
// double-buffered: the level being consumed streams from its finished run
// file while the next level appends to a fresh one, which is what bounds the
// engine's resident bytes to the two in-RAM chunk buffers regardless of how
// wide a BFS level grows.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// ErrSpillCorrupt reports a spill file that fails validation on read: a torn
// chunk header, a CRC mismatch, or fewer records than the writer recorded.
// The exploration that hits it fails with this error — it never continues on
// partial data, so a damaged spill can abort a run but cannot flip a verdict.
var ErrSpillCorrupt = errors.New("explore: corrupt spill file")

// spillChunkMagic marks the start of every flushed chunk.
const spillChunkMagic = 0x44435350 // "DCSP"

// spillHeaderSize is the framed-chunk header: magic, record count, CRC-32.
const spillHeaderSize = 12

// testCorruptFlush, when non-nil, mutates every flushed chunk payload before
// it reaches the file. Tests install it to simulate torn writes end to end;
// it is never set in production.
var testCorruptFlush func(payload []byte)

// runWriter appends fixed-width records to a spill run file through an
// in-RAM buffer of cap(buf) bytes, flushing one framed chunk whenever the
// buffer fills. The file is created lazily — a run that stays under the
// buffer never touches disk.
type runWriter struct {
	dir     string
	name    string // file-name prefix for diagnostics
	f       *os.File
	buf     []byte // cap = flush threshold in bytes (multiple of recSize)
	recSize int
	records int64 // records pushed, RAM and disk combined
	header  [spillHeaderSize]byte
}

func newRunWriter(dir, name string, recSize, bufBytes int) *runWriter {
	if bufBytes < recSize*spillMinBufRecords {
		bufBytes = recSize * spillMinBufRecords
	}
	bufBytes -= bufBytes % recSize
	return &runWriter{dir: dir, name: name, recSize: recSize, buf: make([]byte, 0, bufBytes)}
}

// spillMinBufRecords floors the in-RAM chunk buffer: below this, framing
// overhead and syscall counts dominate and the budget arithmetic of tiny
// test configurations would degenerate to one record per chunk.
const spillMinBufRecords = 64

// push appends one record (rec must be exactly recSize bytes), flushing a
// chunk when the buffer is full.
func (w *runWriter) push(rec []byte) error {
	if len(w.buf)+w.recSize > cap(w.buf) {
		if err := w.flush(); err != nil {
			return err
		}
	}
	w.buf = append(w.buf, rec...)
	w.records++
	return nil
}

// flush writes the buffered records as one framed chunk and empties the
// buffer. An empty buffer is a no-op.
func (w *runWriter) flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	if w.f == nil {
		f, err := os.CreateTemp(w.dir, w.name+"-*.run")
		if err != nil {
			return fmt.Errorf("explore: create spill run: %w", err)
		}
		w.f = f
	}
	binary.LittleEndian.PutUint32(w.header[0:4], spillChunkMagic)
	binary.LittleEndian.PutUint32(w.header[4:8], uint32(len(w.buf)/w.recSize))
	binary.LittleEndian.PutUint32(w.header[8:12], crc32.ChecksumIEEE(w.buf))
	if testCorruptFlush != nil {
		// After the header: the tear hits data the checksum already covers,
		// exactly like a partial or bit-flipped write would.
		testCorruptFlush(w.buf)
	}
	if _, err := w.f.Write(w.header[:]); err != nil {
		return fmt.Errorf("explore: write spill chunk: %w", err)
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("explore: write spill chunk: %w", err)
	}
	spillFrontierRuns.Add(1)
	spillBytes.Add(int64(spillHeaderSize + len(w.buf)))
	w.buf = w.buf[:0]
	return nil
}

// close releases the writer's file without deleting it (the reader side owns
// deletion). Safe on a writer that never spilled.
func (w *runWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// remove closes and deletes the run file, if one was created.
func (w *runWriter) remove() {
	if w.f == nil {
		return
	}
	path := w.f.Name()
	w.f.Close()
	w.f = nil
	os.Remove(path)
}

// runReader streams the records of a finished runWriter back in write order:
// first the framed chunks from disk, then the unflushed in-RAM tail. Every
// chunk is validated (magic, CRC, record alignment) and the total record
// count is checked against what the writer recorded, so truncation anywhere
// — mid-chunk or whole-chunks-lost — is detected.
type runReader struct {
	w        *runWriter
	br       *bufio.Reader
	fileRecs int64 // records expected from disk
	read     int64 // records yielded from disk so far
	chunk    []byte
	chunkOff int
	tailOff  int
	header   [spillHeaderSize]byte
}

// reader finalizes the writer for consumption and returns a reader over its
// records. The writer must not be pushed to afterwards.
func (w *runWriter) reader() (*runReader, error) {
	r := &runReader{w: w, fileRecs: w.records - int64(len(w.buf)/w.recSize)}
	if w.f != nil {
		if _, err := w.f.Seek(0, io.SeekStart); err != nil {
			return nil, fmt.Errorf("explore: rewind spill run: %w", err)
		}
		r.br = bufio.NewReaderSize(w.f, 1<<16)
	}
	return r, nil
}

// next yields the following record, or ok=false at a clean end of the run.
// The returned slice aliases an internal buffer valid until the next call.
func (r *runReader) next() (rec []byte, ok bool, err error) {
	for r.chunkOff >= len(r.chunk) {
		if r.br == nil || r.read >= r.fileRecs {
			// Disk exhausted; fall through to the in-RAM tail.
			if r.br != nil && r.read != r.fileRecs {
				return nil, false, fmt.Errorf("%w: %s: %d records on disk, writer recorded %d",
					ErrSpillCorrupt, r.name(), r.read, r.fileRecs)
			}
			buf := r.w.buf
			if r.tailOff+r.w.recSize <= len(buf) {
				rec := buf[r.tailOff : r.tailOff+r.w.recSize]
				r.tailOff += r.w.recSize
				return rec, true, nil
			}
			return nil, false, nil
		}
		if err := r.readChunk(); err != nil {
			return nil, false, err
		}
	}
	rec = r.chunk[r.chunkOff : r.chunkOff+r.w.recSize]
	r.chunkOff += r.w.recSize
	r.read++
	return rec, true, nil
}

// readChunk loads and validates the next framed chunk from disk.
func (r *runReader) readChunk() error {
	if _, err := io.ReadFull(r.br, r.header[:]); err != nil {
		return fmt.Errorf("%w: %s: torn chunk header: %v", ErrSpillCorrupt, r.name(), err)
	}
	if binary.LittleEndian.Uint32(r.header[0:4]) != spillChunkMagic {
		return fmt.Errorf("%w: %s: bad chunk magic", ErrSpillCorrupt, r.name())
	}
	n := int(binary.LittleEndian.Uint32(r.header[4:8]))
	if n <= 0 || int64(n) > r.fileRecs-r.read {
		return fmt.Errorf("%w: %s: chunk claims %d records with %d expected",
			ErrSpillCorrupt, r.name(), n, r.fileRecs-r.read)
	}
	want := binary.LittleEndian.Uint32(r.header[8:12])
	payload := n * r.w.recSize
	if cap(r.chunk) < payload {
		r.chunk = make([]byte, payload)
	}
	r.chunk = r.chunk[:payload]
	if _, err := io.ReadFull(r.br, r.chunk); err != nil {
		return fmt.Errorf("%w: %s: torn chunk payload: %v", ErrSpillCorrupt, r.name(), err)
	}
	if crc32.ChecksumIEEE(r.chunk) != want {
		return fmt.Errorf("%w: %s: chunk CRC mismatch", ErrSpillCorrupt, r.name())
	}
	r.chunkOff = 0
	return nil
}

func (r *runReader) name() string {
	if r.w.f != nil {
		return filepath.Base(r.w.f.Name())
	}
	return r.w.name
}

// frontierSide is one half of the double buffer: a run of state indices.
type frontierSide struct {
	w *runWriter
	r *runReader
}

// spillFrontier is the disk-backed FIFO frontier of the out-of-core BFS.
// Exactly two runs exist at a time: the level being consumed (read side)
// and the level being discovered (write side). Swap order preserves the
// in-RAM engine's FIFO discovery order exactly: every record of level k is
// popped, in push order, before any record of level k+1.
type spillFrontier struct {
	dir      string
	bufBytes int
	read     frontierSide
	write    frontierSide
	rec      [8]byte
	pending  int64 // records pushed and not yet popped
}

func newSpillFrontier(dir string, bufBytes int) *spillFrontier {
	f := &spillFrontier{dir: dir, bufBytes: bufBytes}
	f.read.w = newRunWriter(dir, "frontier", 8, bufBytes)
	f.write.w = newRunWriter(dir, "frontier", 8, bufBytes)
	return f
}

// push appends idx to the level under construction.
func (f *spillFrontier) push(idx uint64) error {
	binary.LittleEndian.PutUint64(f.rec[:], idx)
	if err := f.write.w.push(f.rec[:]); err != nil {
		return err
	}
	f.pending++
	return nil
}

// pop yields the next index in FIFO order, swapping to the next level when
// the current one is exhausted; ok=false means the frontier is drained.
func (f *spillFrontier) pop() (idx uint64, ok bool, err error) {
	for {
		if f.read.r != nil {
			rec, ok, err := f.read.r.next()
			if err != nil {
				return 0, false, err
			}
			if ok {
				f.pending--
				return binary.LittleEndian.Uint64(rec), true, nil
			}
			// Level consumed: recycle its run file.
			f.read.w.remove()
			f.read.w = newRunWriter(f.dir, "frontier", 8, f.bufBytes)
			f.read.r = nil
		}
		if f.pending == 0 {
			return 0, false, nil
		}
		// Swap: the level under construction becomes the level to consume.
		f.read, f.write = f.write, f.read
		r, err := f.read.w.reader()
		if err != nil {
			return 0, false, err
		}
		f.read.r = r
	}
}

// close releases and deletes both runs.
func (f *spillFrontier) close() {
	f.read.w.remove()
	f.write.w.remove()
}

// parentLog records the BFS tree of a spilled deadlock hunt on disk: one
// (child, parent) index pair per freshly discovered state, appended in
// discovery order. Because every child is discovered strictly after its
// parent, reading the log backwards reconstructs any root-to-witness chain
// in a single reverse pass with O(chunk) memory — the out-of-core stand-in
// for the in-RAM engine's parent map.
type parentLog struct {
	w   *runWriter
	rec [16]byte
}

func newParentLog(dir string, bufBytes int) *parentLog {
	return &parentLog{w: newRunWriter(dir, "parents", 16, bufBytes)}
}

func (l *parentLog) record(child, parent uint64) error {
	binary.LittleEndian.PutUint64(l.rec[0:8], child)
	binary.LittleEndian.PutUint64(l.rec[8:16], parent)
	return l.w.push(l.rec[:])
}

// chain returns the discovery path ending at leaf: the indices from a BFS
// root (a state with no recorded parent) to leaf inclusive, in forward
// order. It scans the log once, newest record first.
func (l *parentLog) chain(leaf uint64) ([]uint64, error) {
	rev := []uint64{leaf}
	want := leaf
	// The in-RAM tail, newest first.
	buf := l.w.buf
	for off := len(buf) - 16; off >= 0; off -= 16 {
		if binary.LittleEndian.Uint64(buf[off:off+8]) == want {
			want = binary.LittleEndian.Uint64(buf[off+8 : off+16])
			rev = append(rev, want)
		}
	}
	// Then the framed chunks, last chunk first, records within a chunk
	// newest first. Chunks are located by a forward validation scan (they
	// are variable-length), then visited in reverse.
	if l.w.f != nil {
		r, err := l.w.reader()
		if err != nil {
			return nil, err
		}
		type span struct{ off, recs int64 }
		var spans []span
		var fileOff int64
		for r.read < r.fileRecs {
			if err := r.readChunk(); err != nil {
				return nil, err
			}
			n := int64(len(r.chunk) / 16)
			spans = append(spans, span{off: fileOff, recs: n})
			fileOff += spillHeaderSize + int64(len(r.chunk))
			r.read += n
			r.chunkOff = len(r.chunk) // consumed by the span scan
		}
		chunk := make([]byte, 0)
		for i := len(spans) - 1; i >= 0; i-- {
			sz := spans[i].recs * 16
			if int64(cap(chunk)) < sz {
				chunk = make([]byte, sz)
			}
			chunk = chunk[:sz]
			if _, err := l.w.f.ReadAt(chunk, spans[i].off+spillHeaderSize); err != nil {
				return nil, fmt.Errorf("%w: parents: %v", ErrSpillCorrupt, err)
			}
			for off := len(chunk) - 16; off >= 0; off -= 16 {
				if binary.LittleEndian.Uint64(chunk[off:off+8]) == want {
					want = binary.LittleEndian.Uint64(chunk[off+8 : off+16])
					rev = append(rev, want)
				}
			}
		}
	}
	// rev runs witness→root; reverse into forward order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

func (l *parentLog) close() { l.w.remove() }
