package flow

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"detcorr/internal/core"
	"detcorr/internal/explore"
	"detcorr/internal/gcl"
	"detcorr/internal/guarded"
	"detcorr/internal/prove"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// The slicing registry connects compiled programs back to their dependence
// analysis, so the graph-based checks in spec and core can try a sliced
// kernel before building the full state space. Like prove's certification
// registry, it is keyed by the *guarded.Program pointer: composed or
// hand-assembled programs miss the fast path, and sliced programs are
// never registered, so a sliced check can never recurse into the slicer.
//
// The hooks are sound by construction: a sliced PASS is returned directly
// (the cone projection argument in DESIGN.md §3i shows the verdicts
// coincide), while a sliced violation is discarded and the full-space
// check re-runs — the public path therefore always reports the same
// witness states, full-width, that the unsliced check would have.

type sliceEntry struct {
	f    *gcl.File
	info *Info

	mu     sync.Mutex
	slices map[string]*sliceResult
}

type sliceResult struct {
	sl *Slice // nil when slicing does not apply to these targets
}

var (
	regMu    sync.RWMutex
	registry = map[*guarded.Program]*sliceEntry{}
	hookOnce sync.Once
	disabled atomic.Bool
)

// SetEnabled turns the slicing pre-pass on or off process-wide (it is on
// once Certify has installed the hooks). Disabling never discards
// analysis — the registry stays populated — it only makes the hooks
// decline, so every check runs full-width.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether the slicing pre-pass is active.
func Enabled() bool { return !disabled.Load() }

// Certify prepares a compiled file for cone-of-influence slicing: the
// file's dependence analysis is computed, its Writes metadata is
// cross-checked against the inferred sets (a mismatch is returned as an
// error and the file is not registered), and the spec/core slicer hooks
// are installed. Files without an AST are skipped silently. Like prover
// certification, slicing never changes a verdict — hooks return sliced
// results only where the cone argument applies and fall back otherwise.
func Certify(f *gcl.File) error {
	if f == nil || f.AST == nil || f.Program == nil {
		return nil
	}
	if err := ValidateWrites(f); err != nil {
		return err
	}
	regMu.Lock()
	if _, ok := registry[f.Program]; !ok {
		registry[f.Program] = &sliceEntry{f: f, info: Analyze(f.AST), slices: map[string]*sliceResult{}}
	}
	regMu.Unlock()
	hookOnce.Do(installHooks)
	return nil
}

func lookup(p *guarded.Program) *sliceEntry {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[p]
}

// sliceFor returns the memoized slice for the given named targets, or nil
// when slicing does not apply: some target is not a declared predicate,
// the cone is empty, or the cone covers every variable (no reduction, so
// the full check is strictly better). The compiled slice is cached so
// repeated verdicts reuse one program pointer — the process-wide graph
// cache then makes repeated sliced checks one-build cheap, exactly like
// full checks.
func (e *sliceEntry) sliceFor(targets []string) *Slice {
	names := append([]string(nil), targets...)
	sort.Strings(names)
	key := strings.Join(names, ",")
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, ok := e.slices[key]; ok {
		return r.sl
	}
	r := &sliceResult{}
	cone, err := e.info.Cone(names...)
	if err == nil && len(cone.Vars) > 0 && len(cone.Vars) < len(e.info.Vars) {
		if sl, serr := sliceInfo(e.info, e.f, names...); serr == nil {
			// The slice is a first-class compiled file: give it the prover
			// fast path too. It is deliberately NOT flow-certified.
			_ = prove.Certify(sl.File)
			r.sl = sl
		}
	}
	e.slices[key] = r
	return r.sl
}

// targetNames extracts the declared-predicate names of the given
// predicates. Trivial predicates (true) contribute no target; ok is false
// when any non-trivial predicate is not declared in the file, or when no
// named target remains.
func (e *sliceEntry) targetNames(preds ...state.Predicate) ([]string, bool) {
	var names []string
	for _, p := range preds {
		if p.IsTrivial() || p.String() == "true" {
			continue
		}
		if _, ok := e.info.Pred(p.String()); !ok {
			return nil, false
		}
		names = append(names, p.String())
	}
	if len(names) == 0 {
		return nil, false
	}
	return names, true
}

// slicedPred resolves a predicate of the full file onto the slice.
func slicedPred(sl *Slice, p state.Predicate) (state.Predicate, bool) {
	if p.IsTrivial() || p.String() == "true" {
		return state.True, true
	}
	sp, ok := sl.File.Pred(p.String())
	return sp, ok
}

// isVerdict distinguishes a property violation (a genuine fails verdict)
// from an operational error. Only violations may be forwarded from a
// sliced run — and even those are re-derived full-width by the caller —
// while operational errors make the hook decline so the full check runs.
func isVerdict(err error) bool {
	var cv *spec.ClosureViolation
	var lv *explore.LivenessViolation
	var ce *core.ConditionError
	return errors.As(err, &cv) || errors.As(err, &lv) || errors.As(err, &ce)
}

func installHooks() {
	spec.RegisterClosedSlicer(func(ctx context.Context, p *guarded.Program, s state.Predicate) (error, bool) {
		sl, ok := hookSlice(p, s)
		if !ok {
			return nil, false
		}
		sp, ok := slicedPred(sl, s)
		if !ok {
			return nil, false
		}
		err := spec.CheckClosedCtx(ctx, sl.File.Program, sp)
		if err != nil && !isVerdict(err) {
			return nil, false
		}
		return err, true
	})
	spec.RegisterConvergesSlicer(func(ctx context.Context, p *guarded.Program, s, r state.Predicate) (error, bool) {
		sl, ok := hookSlice(p, s, r)
		if !ok {
			return nil, false
		}
		ss, ok1 := slicedPred(sl, s)
		sr, ok2 := slicedPred(sl, r)
		if !ok1 || !ok2 {
			return nil, false
		}
		err := spec.CheckConvergesCtx(ctx, sl.File.Program, ss, sr)
		if err != nil && !isVerdict(err) {
			return nil, false
		}
		return err, true
	})
	core.RegisterComponentSlicer(func(ctx context.Context, kind string, p *guarded.Program, z, x, u state.Predicate) (error, bool) {
		sl, ok := hookSlice(p, z, x, u)
		if !ok {
			return nil, false
		}
		sz, ok1 := slicedPred(sl, z)
		sx, ok2 := slicedPred(sl, x)
		su, ok3 := slicedPred(sl, u)
		if !ok1 || !ok2 || !ok3 {
			return nil, false
		}
		var err error
		switch kind {
		case "detector":
			err = core.Detector{Name: "slice(" + sl.File.Name + ")", D: sl.File.Program, Z: sz, X: sx, U: su}.CheckCtx(ctx)
		case "corrector":
			err = core.Corrector{Name: "slice(" + sl.File.Name + ")", C: sl.File.Program, Z: sz, X: sx, U: su}.CheckCtx(ctx)
		default:
			return nil, false
		}
		if err != nil && !isVerdict(err) {
			return nil, false
		}
		return err, true
	})
}

// hookSlice is the common hook front half: look the program up, turn the
// predicates into named targets, and fetch the memoized slice.
func hookSlice(p *guarded.Program, preds ...state.Predicate) (*Slice, bool) {
	if !Enabled() {
		return nil, false
	}
	e := lookup(p)
	if e == nil {
		return nil, false
	}
	targets, ok := e.targetNames(preds...)
	if !ok {
		return nil, false
	}
	sl := e.sliceFor(targets)
	if sl == nil {
		return nil, false
	}
	return sl, true
}
