package flow

import (
	"fmt"
	"sort"

	"detcorr/internal/gcl"
	"detcorr/internal/guarded"
)

// ValidateWrites cross-checks three independent derivations of every
// action's write set — the guarded.Action.Writes metadata the compiler
// declared, the set Analyze infers from the AST, and the assignment
// targets in the kernel bytecode — and, for actions carrying bytecode,
// checks that the OpVar reads in the bytecode match the reads inferred
// from the AST. A mismatch means some layer dropped or over-claimed a
// variable; the differential tests run this over every example system.
func ValidateWrites(f *gcl.File) error {
	if f == nil || f.AST == nil {
		return nil
	}
	in := Analyze(f.AST)
	acts := f.Program.Actions()
	if len(acts) != len(in.Actions) {
		return fmt.Errorf("flow: %s: %d compiled actions vs %d declared", f.Name, len(acts), len(in.Actions))
	}
	for i := range acts {
		act := &acts[i]
		af := &in.Actions[i]
		if act.Name != af.Name {
			return fmt.Errorf("flow: %s: action %d is %q compiled but %q declared", f.Name, i, act.Name, af.Name)
		}
		if err := validateAction(f, act, af); err != nil {
			return err
		}
	}
	return nil
}

func validateAction(f *gcl.File, act *guarded.Action, af *ActionFlow) error {
	declared := append([]string(nil), act.Writes...)
	sort.Strings(declared)
	inferred := append([]string(nil), af.Writes...)
	sort.Strings(inferred)
	if act.Writes == nil {
		return fmt.Errorf("flow: %s: action %q carries no Writes metadata (inferred %v)", f.Name, act.Name, inferred)
	}
	if !equalSets(declared, inferred) {
		return fmt.Errorf("flow: %s: action %q declares writes %v, inferred %v", f.Name, act.Name, declared, inferred)
	}
	if act.Compiled == nil {
		return nil
	}
	var fromOps []string
	reads := map[string]bool{}
	opReads(act.Compiled.Guard, f, reads)
	for _, as := range act.Compiled.Assigns {
		fromOps = append(fromOps, f.Schema.Var(as.Var).Name)
		opReads(as.Expr, f, reads)
	}
	sort.Strings(fromOps)
	if !equalSets(dedup(fromOps), dedup(inferred)) {
		return fmt.Errorf("flow: %s: action %q bytecode writes %v, inferred %v", f.Name, act.Name, fromOps, inferred)
	}
	// Bytecode reads can only be checked when every expression lowered;
	// a nil guard with lowered assigns would under-report.
	if act.Compiled.Guard == nil && !isTrivialGuard(af) {
		return nil
	}
	var opRead []string
	for name := range reads {
		opRead = append(opRead, name)
	}
	sort.Strings(opRead)
	astRead := append([]string(nil), af.Reads...)
	sort.Strings(astRead)
	if !equalSets(opRead, astRead) {
		return fmt.Errorf("flow: %s: action %q bytecode reads %v, inferred %v", f.Name, act.Name, opRead, astRead)
	}
	return nil
}

// isTrivialGuard reports whether the action's guard reads nothing, in
// which case a nil compiled guard loses no read information.
func isTrivialGuard(af *ActionFlow) bool { return len(af.GuardReads) == 0 }

func opReads(ops []guarded.Op, f *gcl.File, into map[string]bool) {
	for i := range ops {
		if ops[i].Code == guarded.OpVar {
			into[f.Schema.Var(int(ops[i].A)).Name] = true
		}
	}
}

func equalSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func dedup(sorted []string) []string {
	out := sorted[:0:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}
