package flow

import (
	"sort"
	"strings"

	"detcorr/internal/explore"
	"detcorr/internal/gcl"
)

// Plan is the semantic diff of two revisions of a file, shaped for the
// incremental re-verification pipeline: a per-action repair plan for
// explore.Repair, plus the sameness facts the verdict-preservation rules
// need. Unlike AffectedBy — whose AffectedPreds answers "which predicate
// verdicts may differ" through slice signatures — Plan answers "which
// declarations mean the same thing", with every referenced predicate
// expanded, so a predicate rename that leaves meanings intact still plans
// as clean.
//
// Every sameness fact below is gated on the variable declarations being
// identical (names, order, domains): a domain change alters the meaning of
// syntactically unchanged expressions, so nothing is "same" across one.
type Plan struct {
	// Graph is the action-level plan for explore.Repair; nil when the edit
	// changed variable declarations or duplicated action names (graphs
	// must rebuild from scratch).
	Graph *explore.RepairPlan
	// SamePreds holds the new-revision predicates whose extension is
	// provably the old one's: their expressions, with every referenced
	// predicate expanded transitively, are structurally identical.
	SamePreds map[string]bool
	// AllPredsSame: the two revisions declare the same predicate names and
	// every one is in SamePreds.
	AllPredsSame bool
	// SameFaults: the fault sections are semantically identical (same
	// names, order, guards, assignments, with predicates expanded).
	SameFaults bool
	// SameDecls: component and span declarations render identically.
	SameDecls bool
	// SameName: the program declares the same name (responses echo it).
	SameName bool
}

// Identity reports whether the program's own transition relation is
// provably unchanged: every action maps to itself clean.
func (p *Plan) Identity() bool { return p.Graph.Identity() }

// FileUnchanged reports whether the whole file is semantically the old one
// — actions, predicates, faults, components, spans, and the declared name.
// It is the preservation gate for verdicts whose inputs repair cannot
// decompose (prove obligations, fault-tolerance checks).
func (p *Plan) FileUnchanged() bool {
	return p.Identity() && p.AllPredsSame && p.SameFaults && p.SameDecls && p.SameName
}

// PlanRepair builds the repair plan mapping the old revision onto the new
// one. It never fails: edits outside repair's scope yield a plan with a nil
// Graph and empty sameness sets, which downstream consumers treat as
// "rebuild and re-check everything".
func PlanRepair(oldAST, newAST *gcl.FileAST) *Plan {
	oldIn, newIn := Analyze(oldAST), Analyze(newAST)
	p := &Plan{
		SamePreds: map[string]bool{},
		SameName:  oldAST.Name == newAST.Name,
		SameDecls: renderScopeDecls(oldAST) == renderScopeDecls(newAST),
	}
	varsSame := renderVarDecls(oldAST) == renderVarDecls(newAST)
	if !varsSame {
		return p
	}

	for i := range newAST.Preds {
		name := newAST.Preds[i].Name
		op, ok := oldIn.Pred(name)
		if !ok {
			continue
		}
		if semSig(oldIn, op.Decl.Expr) == semSig(newIn, newAST.Preds[i].Expr) {
			p.SamePreds[name] = true
		}
	}
	p.AllPredsSame = len(oldAST.Preds) == len(newAST.Preds) &&
		len(p.SamePreds) == len(newAST.Preds) &&
		uniqueNames(predNames(oldAST.Preds)) && uniqueNames(predNames(newAST.Preds))
	p.SameFaults = renderActionsSem(oldIn, oldAST.Faults) == renderActionsSem(newIn, newAST.Faults)

	// The action-level graph plan. Action identity is by name, so the
	// mapping is only well defined when names are unique in both
	// revisions (dclint flags duplicates; a duplicated name here would
	// alias two distinct old edge sets).
	if !uniqueNames(actionNames(oldAST.Actions)) || !uniqueNames(actionNames(newAST.Actions)) {
		return p
	}
	oldByName := make(map[string]int, len(oldAST.Actions))
	for i := range oldAST.Actions {
		oldByName[oldAST.Actions[i].Name] = i
	}
	gp := &explore.RepairPlan{
		OldActions: len(oldAST.Actions),
		OldIndex:   make([]int, len(newAST.Actions)),
		Dirt:       make([]explore.ActionDirt, len(newAST.Actions)),
	}
	for j := range newAST.Actions {
		d := &newAST.Actions[j]
		oj, ok := oldByName[d.Name]
		if !ok {
			gp.OldIndex[j] = -1
			gp.Dirt[j] = explore.ActionFullDirty
			continue
		}
		od := &oldAST.Actions[oj]
		gp.OldIndex[j] = oj
		switch {
		case assignsSemSame(oldIn, od, newIn, d) && semSig(oldIn, od.Guard) == semSig(newIn, d.Guard):
			gp.Dirt[j] = explore.ActionClean
		case assignsSemSame(oldIn, od, newIn, d):
			gp.Dirt[j] = explore.ActionGuardDirty
		default:
			gp.Dirt[j] = explore.ActionFullDirty
		}
	}
	p.Graph = gp
	return p
}

// semSig renders an expression with every referenced predicate expanded
// (transitively, sorted by name): two expressions with equal signatures
// over identical variable declarations denote the same state function.
func semSig(in *Info, e gcl.Expr) string {
	if e == nil {
		return ""
	}
	var sb strings.Builder
	renderExpr(&sb, e)
	refs := map[string]bool{}
	predRefClosure(in, e, refs)
	if len(refs) > 0 {
		names := make([]string, 0, len(refs))
		for n := range refs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			sb.WriteString("\npred ")
			sb.WriteString(n)
			sb.WriteString("::")
			renderExpr(&sb, in.Preds[in.predIdx[n]].Decl.Expr)
		}
	}
	return sb.String()
}

// predRefClosure collects the predicates an expression references,
// transitively through predicate bodies. Variable names shadow predicate
// names, mirroring walkExpr's resolution order.
func predRefClosure(in *Info, e gcl.Expr, out map[string]bool) {
	switch n := e.(type) {
	case *gcl.Ref:
		if _, isVar := in.varIdx[n.Name]; isVar {
			return
		}
		if pi, ok := in.predIdx[n.Name]; ok && !out[n.Name] {
			out[n.Name] = true
			predRefClosure(in, in.Preds[pi].Decl.Expr, out)
		}
	case *gcl.Unary:
		predRefClosure(in, n.X, out)
	case *gcl.Binary:
		predRefClosure(in, n.L, out)
		predRefClosure(in, n.R, out)
	}
}

// assignsSemSame reports whether two actions' assignment lists are
// semantically identical: same targets in the same order, each right-hand
// side signature-equal (wild '?' matches only wild).
func assignsSemSame(oldIn *Info, od *gcl.ActionDecl, newIn *Info, nd *gcl.ActionDecl) bool {
	if len(od.Assigns) != len(nd.Assigns) {
		return false
	}
	for i := range od.Assigns {
		oa, na := &od.Assigns[i], &nd.Assigns[i]
		if oa.Var != na.Var || (oa.Expr == nil) != (na.Expr == nil) {
			return false
		}
		if oa.Expr != nil && semSig(oldIn, oa.Expr) != semSig(newIn, na.Expr) {
			return false
		}
	}
	return true
}

// renderActionsSem renders a declaration list with predicate-expanded
// guards and right-hand sides, for whole-section sameness checks.
func renderActionsSem(in *Info, decls []gcl.ActionDecl) string {
	var sb strings.Builder
	for i := range decls {
		d := &decls[i]
		sb.WriteString(d.Name)
		sb.WriteString("::")
		sb.WriteString(semSig(in, d.Guard))
		sb.WriteString("->")
		for j, a := range d.Assigns {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(a.Var)
			sb.WriteString(":=")
			if a.Expr == nil {
				sb.WriteByte('?')
			} else {
				sb.WriteString(semSig(in, a.Expr))
			}
		}
		sb.WriteByte('\x1e')
	}
	return sb.String()
}

// renderVarDecls renders the variable section: names, order, and domains.
func renderVarDecls(ast *gcl.FileAST) string {
	var sb strings.Builder
	for _, d := range ast.Vars {
		sb.WriteString(d.Name)
		sb.WriteByte(':')
		renderType(&sb, d.Type)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// renderScopeDecls renders the component and span declarations.
func renderScopeDecls(ast *gcl.FileAST) string {
	var sb strings.Builder
	for i := range ast.Components {
		d := &ast.Components[i]
		sb.WriteString(d.Kind.String())
		sb.WriteByte(' ')
		sb.WriteString(d.Name)
		sb.WriteByte(':')
		for _, sv := range d.Scope {
			sb.WriteString(sv.Name)
			sb.WriteByte(',')
		}
		sb.WriteByte('\n')
	}
	for i := range ast.Spans {
		sb.WriteString("span ")
		for _, sv := range ast.Spans[i].Vars {
			sb.WriteString(sv.Name)
			sb.WriteByte(',')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// uniqueNames reports whether every name in the list is distinct.
func uniqueNames(names []string) bool {
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}
