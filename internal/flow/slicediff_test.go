package flow_test

import (
	"sort"
	"testing"

	"detcorr/internal/core"
	"detcorr/internal/explore/difftest"
	"detcorr/internal/flow"
	"detcorr/internal/gcl"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// The slice difftest: for every example system and every declared
// predicate, the verdicts of the public check entry points on a
// flow-certified file (where the slicing pre-pass may serve a sliced
// kernel) must be byte-identical — verdict AND witness — to the verdicts
// on a fresh, uncertified compile of the same source, which the hooks
// cannot see. The sweep deliberately includes failing verdicts: those
// exercise the fall-through path where a sliced violation is discarded
// and the full-space check re-derives the witness.

var sliceDiffSources = []struct {
	name string
	src  string
}{
	{"ring3", difftest.RingSource(3, 3)},
	{"ring_watched", difftest.RingWatchedSource(3, 3)},
	{"memaccess_pm", difftest.MemaccessPM},
	{"memaccess_pf", difftest.MemaccessPF},
	{"memaccess_pn", difftest.MemaccessPN},
	{"memaccess_pair", difftest.MemaccessPairSource},
	{"tmr", difftest.TMRSource},
	{"byzagree", difftest.ByzAgreeSource},
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

func predNames(f *gcl.File) []string {
	names := make([]string, 0, len(f.Preds))
	for name := range f.Preds {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func TestSliceDifftest(t *testing.T) {
	for _, tc := range sliceDiffSources {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			// Reference: a fresh compile the registry has never seen. Its
			// program pointer misses both the prover and slicer lookups, so
			// every check runs full-width.
			ref, err := gcl.ParseAndCompile(tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// Subject: an independently compiled copy, flow-certified so
			// the slicing pre-pass is armed for it.
			sub, err := gcl.ParseAndCompile(tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if err := flow.Certify(sub); err != nil {
				t.Fatalf("certify: %v", err)
			}
			for _, pname := range predNames(ref) {
				rp, _ := ref.Pred(pname)
				sp, _ := sub.Pred(pname)
				diffOne(t, "closed("+pname+")",
					spec.CheckClosed(ref.Program, rp),
					spec.CheckClosed(sub.Program, sp))
				diffOne(t, "converges("+pname+")",
					spec.CheckConverges(ref.Program, state.True, rp),
					spec.CheckConverges(sub.Program, state.True, sp))
				// Component checks with Z = X = U = the predicate: Safeness
				// is trivially satisfiable, Stability and Progress are not,
				// so the sweep hits both verdict polarities.
				diffOne(t, "detects("+pname+")",
					core.Detector{Name: "d", D: ref.Program, Z: rp, X: rp, U: rp}.Check(),
					core.Detector{Name: "d", D: sub.Program, Z: sp, X: sp, U: sp}.Check())
				diffOne(t, "corrects("+pname+")",
					core.Corrector{Name: "c", C: ref.Program, Z: rp, X: rp, U: rp}.Check(),
					core.Corrector{Name: "c", C: sub.Program, Z: sp, X: sp, U: sp}.Check())
			}
		})
	}
}

func diffOne(t *testing.T, what string, refErr, subErr error) {
	t.Helper()
	if errString(refErr) != errString(subErr) {
		t.Errorf("%s: verdicts diverge\n  full:   %s\n  sliced: %s",
			what, errString(refErr), errString(subErr))
	}
}

// TestSliceDifftestDirect pins the sliced fast path itself: for cones that
// genuinely shrink the program, the directly computed sliced verdict's
// nil-ness must agree with the full-width reference — this is the half the
// public path cannot distinguish from a fall-through.
func TestSliceDifftestDirect(t *testing.T) {
	for _, tc := range sliceDiffSources {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ref, err := gcl.ParseAndCompile(tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			in := flow.Analyze(ref.AST)
			for _, pname := range predNames(ref) {
				cone, err := in.Cone(pname)
				if err != nil || len(cone.Vars) == 0 || len(cone.Vars) == len(in.Vars) {
					continue // slicing would not apply
				}
				sl, err := flow.SliceFile(ref, pname)
				if err != nil {
					t.Fatalf("slice %s: %v", pname, err)
				}
				rp, _ := ref.Pred(pname)
				sp, ok := sl.File.Pred(pname)
				if !ok {
					t.Fatalf("slice %s lost its target", pname)
				}
				refErr := spec.CheckClosed(ref.Program, rp)
				subErr := spec.CheckClosed(sl.File.Program, sp)
				if (refErr == nil) != (subErr == nil) {
					t.Errorf("closed(%s): full %v, sliced %v", pname, refErr, subErr)
				}
				refErr = spec.CheckConverges(ref.Program, state.True, rp)
				subErr = spec.CheckConverges(sl.File.Program, state.True, sp)
				if (refErr == nil) != (subErr == nil) {
					t.Errorf("converges(%s): full %v, sliced %v", pname, refErr, subErr)
				}
			}
		})
	}
}
