package flow

import (
	"strings"

	"detcorr/internal/gcl"
)

// Impact is the result of diffing two revisions of a file: which entities
// changed syntactically, and which predicates' verdicts the change can
// actually reach. AffectedPreds is the set watch mode needs: a predicate
// outside it has, provably, the same closure/detects/corrects verdicts in
// both revisions, because its entire cone-of-influence slice is unchanged.
type Impact struct {
	ChangedVars    []string `json:"changed_vars,omitempty"`
	ChangedPreds   []string `json:"changed_preds,omitempty"`
	ChangedActions []string `json:"changed_actions,omitempty"`
	ChangedFaults  []string `json:"changed_faults,omitempty"`
	AffectedPreds  []string `json:"affected_preds"`
}

// Unchanged reports whether no predicate verdict can have changed.
func (im *Impact) Unchanged() bool { return len(im.AffectedPreds) == 0 }

// AffectedBy diffs two revisions of a file and reports which predicates of
// the new revision may have different verdicts. A predicate is affected
// iff its cone-of-influence slice — the cone variables' declarations, the
// kept actions restricted to cone targets, and the predicates they
// reference — renders differently in the two revisions (including
// predicates that did not exist before). The comparison is syntactic on
// canonical renderings, so it is sound: an unchanged slice means an
// unchanged verdict, while a changed slice merely licenses a re-check.
//
// Fault declarations are diffed for reporting but do not affect
// AffectedPreds: fault-composed checks run on composed programs that the
// slicer never serves, so watch mode re-checks those whenever
// ChangedFaults (or AffectedPreds) is non-empty.
func AffectedBy(oldAST, newAST *gcl.FileAST) *Impact {
	oldIn, newIn := Analyze(oldAST), Analyze(newAST)
	im := &Impact{}

	im.ChangedVars = diffNames(
		varNames(oldAST.Vars), varNames(newAST.Vars),
		func(name string) string { return renderVar(oldAST, name) },
		func(name string) string { return renderVar(newAST, name) },
	)
	im.ChangedPreds = diffNames(
		predNames(oldAST.Preds), predNames(newAST.Preds),
		func(name string) string { return renderPred(oldAST, name) },
		func(name string) string { return renderPred(newAST, name) },
	)
	im.ChangedActions = diffNames(
		actionNames(oldAST.Actions), actionNames(newAST.Actions),
		func(name string) string { return renderAction(oldAST.Actions, name) },
		func(name string) string { return renderAction(newAST.Actions, name) },
	)
	im.ChangedFaults = diffNames(
		actionNames(oldAST.Faults), actionNames(newAST.Faults),
		func(name string) string { return renderAction(oldAST.Faults, name) },
		func(name string) string { return renderAction(newAST.Faults, name) },
	)

	// A variable-declaration change affects every predicate, even those
	// whose cone never reads it: witness states in verdicts are rendered
	// full-width, so a renamed (or added, or re-domained) variable changes
	// the text of any witness-carrying verdict. Slices only bound what a
	// verdict depends on semantically; the variable section is part of
	// every verdict's rendering.
	if len(im.ChangedVars) > 0 {
		for i := range newIn.Preds {
			im.AffectedPreds = append(im.AffectedPreds, newIn.Preds[i].Name)
		}
		return im
	}
	for i := range newIn.Preds {
		name := newIn.Preds[i].Name
		oldSig, oldOK := sliceSignature(oldIn, name)
		newSig, newOK := sliceSignature(newIn, name)
		if !oldOK || !newOK || oldSig != newSig {
			im.AffectedPreds = append(im.AffectedPreds, name)
		}
	}
	return im
}

// sliceSignature renders the cone-of-influence slice of one predicate.
func sliceSignature(in *Info, pred string) (string, bool) {
	if _, ok := in.Pred(pred); !ok {
		return "", false
	}
	cone, err := in.Cone(pred)
	if err != nil {
		return "", false
	}
	return renderAST(sliceAST(in, cone)), true
}

// diffNames reports names present in exactly one revision or rendering
// differently across the two, in new-revision order (removed names last).
func diffNames(oldNames, newNames []string, oldRender, newRender func(string) string) []string {
	oldSet := map[string]bool{}
	for _, n := range oldNames {
		oldSet[n] = true
	}
	newSet := map[string]bool{}
	var out []string
	for _, n := range newNames {
		newSet[n] = true
		if !oldSet[n] || oldRender(n) != newRender(n) {
			out = append(out, n)
		}
	}
	for _, n := range oldNames {
		if !newSet[n] {
			out = append(out, n)
		}
	}
	return out
}

func varNames(vars []gcl.VarDecl) []string {
	out := make([]string, 0, len(vars))
	for _, d := range vars {
		out = append(out, d.Name)
	}
	return out
}

func predNames(preds []gcl.PredDecl) []string {
	out := make([]string, 0, len(preds))
	for _, d := range preds {
		out = append(out, d.Name)
	}
	return out
}

func actionNames(decls []gcl.ActionDecl) []string {
	out := make([]string, 0, len(decls))
	for _, d := range decls {
		out = append(out, d.Name)
	}
	return out
}

func renderVar(ast *gcl.FileAST, name string) string {
	for _, d := range ast.Vars {
		if d.Name == name {
			var sb strings.Builder
			renderType(&sb, d.Type)
			return sb.String()
		}
	}
	return ""
}

func renderPred(ast *gcl.FileAST, name string) string {
	for _, d := range ast.Preds {
		if d.Name == name {
			return ExprString(d.Expr)
		}
	}
	return ""
}

func renderAction(decls []gcl.ActionDecl, name string) string {
	for i := range decls {
		if decls[i].Name == name {
			var sb strings.Builder
			renderActions(&sb, "", decls[i:i+1])
			return sb.String()
		}
	}
	return ""
}
