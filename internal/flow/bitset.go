package flow

// bitset is a fixed-width bit vector over variable declaration indices.
// All sets of one Info share a word count, so the binary operations can
// skip bounds reconciliation.
type bitset []uint64

func newBitset(words int) bitset { return make(bitset, words) }

//dc:zeroalloc
func (b bitset) set(i int) { b[i>>6] |= 1 << uint(i&63) }

//dc:zeroalloc
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

//dc:zeroalloc
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// orChanged ors o into b and reports whether b grew.
//
//dc:zeroalloc
func (b bitset) orChanged(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

//dc:zeroalloc
func (b bitset) intersects(o bitset) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

//dc:zeroalloc
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
