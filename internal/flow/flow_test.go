package flow

import (
	"reflect"
	"testing"

	"detcorr/internal/gcl"
)

const ringWatchedSrc = `
program watched

var x0 : 0..2
var x1 : 0..2
var alarm : bool
var t : 0..3

pred Legit  :: x0 == x1
pred Seen   :: alarm

detector mon : alarm, t

action move0     :: x0 == x1          -> x0 := (x0 + 1) % 3
action move1     :: x0 != x1          -> x1 := x0
action mon.tick  :: true              -> t := (t + 1) % 4
action mon.watch :: x0 == 0 & !alarm  -> alarm := true

fault corrupt :: true -> x1 := ?
`

func mustAnalyze(t *testing.T, src string) (*gcl.File, *Info) {
	t.Helper()
	f, err := gcl.ParseAndCompile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return f, Analyze(f.AST)
}

func TestAnalyzeReadWriteSets(t *testing.T) {
	_, in := mustAnalyze(t, ringWatchedSrc)
	want := map[string]struct{ guard, reads, writes []string }{
		"move0":     {[]string{"x0", "x1"}, []string{"x0", "x1"}, []string{"x0"}},
		"move1":     {[]string{"x0", "x1"}, []string{"x0", "x1"}, []string{"x1"}},
		"mon.tick":  {[]string{}, []string{"t"}, []string{"t"}},
		"mon.watch": {[]string{"x0", "alarm"}, []string{"x0", "alarm"}, []string{"alarm"}},
	}
	if len(in.Actions) != len(want) {
		t.Fatalf("actions = %d, want %d", len(in.Actions), len(want))
	}
	for _, af := range in.Actions {
		w, ok := want[af.Name]
		if !ok {
			t.Fatalf("unexpected action %q", af.Name)
		}
		if !reflect.DeepEqual(af.GuardReads, w.guard) {
			t.Errorf("%s guard reads = %v, want %v", af.Name, af.GuardReads, w.guard)
		}
		if !reflect.DeepEqual(af.Reads, w.reads) {
			t.Errorf("%s reads = %v, want %v", af.Name, af.Reads, w.reads)
		}
		if !reflect.DeepEqual(af.Writes, w.writes) {
			t.Errorf("%s writes = %v, want %v", af.Name, af.Writes, w.writes)
		}
	}
	if len(in.Faults) != 1 || !reflect.DeepEqual(in.Faults[0].Writes, []string{"x1"}) {
		t.Fatalf("faults = %+v", in.Faults)
	}
	// Predicate reads are transitive through predicate references.
	legit, _ := in.Pred("Legit")
	if !reflect.DeepEqual(legit.Reads, []string{"x0", "x1"}) {
		t.Fatalf("Legit reads = %v", legit.Reads)
	}
	// Component membership by name prefix.
	if len(in.Components) != 1 || !reflect.DeepEqual(in.Components[0].Scope, []string{"alarm", "t"}) {
		t.Fatalf("components = %+v", in.Components)
	}
	var members []string
	for _, ai := range in.Components[0].Actions {
		members = append(members, in.Actions[ai].Name)
	}
	if !reflect.DeepEqual(members, []string{"mon.tick", "mon.watch"}) {
		t.Fatalf("component actions = %v", members)
	}
}

func TestPredReadsExpandPredRefs(t *testing.T) {
	_, in := mustAnalyze(t, `
program p
var a : bool
var b : bool
pred P :: a
pred Q :: P & b
action set :: true -> a := b
`)
	q, _ := in.Pred("Q")
	if !reflect.DeepEqual(q.Reads, []string{"a", "b"}) {
		t.Fatalf("Q reads = %v", q.Reads)
	}
	// Direct reads record only syntactic variable references.
	if len(q.DirectReads) != 1 || q.DirectReads[0].Name != "b" {
		t.Fatalf("Q direct reads = %+v", q.DirectReads)
	}
}

func TestCone(t *testing.T) {
	_, in := mustAnalyze(t, ringWatchedSrc)
	cone, err := in.Cone("Legit")
	if err != nil {
		t.Fatalf("cone: %v", err)
	}
	if !reflect.DeepEqual(cone.Vars, []string{"x0", "x1"}) {
		t.Fatalf("cone vars = %v", cone.Vars)
	}
	var kept []string
	for _, ai := range cone.Kept {
		kept = append(kept, in.Actions[ai].Name)
	}
	if !reflect.DeepEqual(kept, []string{"move0", "move1"}) {
		t.Fatalf("kept = %v", kept)
	}
	// The detector reads ring variables, so its cone pulls them in — the
	// dependence is directional.
	cone, err = in.Cone("Seen")
	if err != nil {
		t.Fatalf("cone: %v", err)
	}
	if !reflect.DeepEqual(cone.Vars, []string{"x0", "x1", "alarm"}) {
		t.Fatalf("Seen cone vars = %v", cone.Vars)
	}
	if _, err := in.Cone("NoSuch"); err == nil {
		t.Fatal("unknown predicate: want error")
	}
}

func TestDepEdges(t *testing.T) {
	_, in := mustAnalyze(t, `
program p
var a : bool
var b : bool
var c : bool
pred P :: c
action copy :: a -> b := c
`)
	got := in.DepEdges()
	want := []DepEdge{
		{From: "a", To: "b", Action: "copy"},
		{From: "c", To: "b", Action: "copy"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dep edges = %+v, want %+v", got, want)
	}
}

func TestSliceFile(t *testing.T) {
	f, _ := mustAnalyze(t, ringWatchedSrc)
	sl, err := SliceFile(f, "Legit")
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	if !reflect.DeepEqual(sl.ConeVars, []string{"x0", "x1"}) {
		t.Fatalf("cone vars = %v", sl.ConeVars)
	}
	if !reflect.DeepEqual(sl.KeptActions, []string{"move0", "move1"}) {
		t.Fatalf("kept = %v", sl.KeptActions)
	}
	if sl.FullStates != 2*3*3*4 || sl.SlicedStates != 9 {
		t.Fatalf("states = %v -> %v", sl.FullStates, sl.SlicedStates)
	}
	if sl.Reduction() != 8 {
		t.Fatalf("reduction = %v", sl.Reduction())
	}
	if _, ok := sl.File.Pred("Legit"); !ok {
		t.Fatal("sliced file lost the target predicate")
	}
	if n := sl.File.Program.NumActions(); n != 2 {
		t.Fatalf("sliced actions = %d", n)
	}
	if len(sl.File.Faults.Actions) != 0 {
		t.Fatal("sliced file kept fault actions")
	}
}

func TestSliceRewritesDanglingEnumConsts(t *testing.T) {
	f, _ := mustAnalyze(t, `
program p
var mode : enum(off, on)
var x : 0..1
pred P :: x == 1
action bump :: x == 0 -> x := x + 1
action switch :: true -> mode := on
`)
	sl, err := SliceFile(f, "P")
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	if !reflect.DeepEqual(sl.ConeVars, []string{"x"}) {
		t.Fatalf("cone vars = %v", sl.ConeVars)
	}
	// A kept predicate referencing a dropped enum's constant still
	// compiles: the constant is rewritten to its integer value.
	f2, _ := mustAnalyze(t, `
program p
var mode : enum(off, on)
var x : 0..2
pred P :: x == on
action bump :: x == 0 -> x := x + 1
action switch :: true -> mode := on
`)
	sl2, err := SliceFile(f2, "P")
	if err != nil {
		t.Fatalf("slice with dangling const: %v", err)
	}
	if !reflect.DeepEqual(sl2.ConeVars, []string{"x"}) {
		t.Fatalf("cone vars = %v", sl2.ConeVars)
	}
	if n := sl2.File.Program.NumActions(); n != 1 {
		t.Fatalf("sliced actions = %d", n)
	}
	// A guard read that gates a cone-target assign pulls its variable into
	// the cone — the dependence is real, not a dangling reference.
	f3, _ := mustAnalyze(t, `
program p
var mode : enum(off, on)
var x : 0..1
pred P :: x == 1
action bump :: x == 0 -> x := x + 1
action switch :: mode == off -> mode := on, x := 1
`)
	sl3, err := SliceFile(f3, "P")
	if err != nil {
		t.Fatalf("slice: %v", err)
	}
	if !reflect.DeepEqual(sl3.ConeVars, []string{"mode", "x"}) {
		t.Fatalf("cone vars = %v", sl3.ConeVars)
	}
}

func TestValidateWritesCorpus(t *testing.T) {
	for _, src := range []string{ringWatchedSrc} {
		f, err := gcl.ParseAndCompile(src)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if err := ValidateWrites(f); err != nil {
			t.Errorf("validate: %v", err)
		}
	}
}

func TestAffectedBy(t *testing.T) {
	oldF, _ := mustAnalyze(t, ringWatchedSrc)
	// An edit confined to the detector: Legit's cone is untouched, Seen's
	// cone includes the edited action.
	newSrc := `
program watched

var x0 : 0..2
var x1 : 0..2
var alarm : bool
var t : 0..3

pred Legit  :: x0 == x1
pred Seen   :: alarm

detector mon : alarm, t

action move0     :: x0 == x1          -> x0 := (x0 + 1) % 3
action move1     :: x0 != x1          -> x1 := x0
action mon.tick  :: true              -> t := (t + 1) % 4
action mon.watch :: x0 == 1 & !alarm  -> alarm := true

fault corrupt :: true -> x1 := ?
`
	newF, _ := mustAnalyze(t, newSrc)
	im := AffectedBy(oldF.AST, newF.AST)
	if !reflect.DeepEqual(im.ChangedActions, []string{"mon.watch"}) {
		t.Fatalf("changed actions = %v", im.ChangedActions)
	}
	if !reflect.DeepEqual(im.AffectedPreds, []string{"Seen"}) {
		t.Fatalf("affected preds = %v", im.AffectedPreds)
	}
	if len(im.ChangedVars)+len(im.ChangedPreds)+len(im.ChangedFaults) != 0 {
		t.Fatalf("spurious changes: %+v", im)
	}
	// Identity diff: nothing affected.
	if im := AffectedBy(oldF.AST, oldF.AST); !im.Unchanged() {
		t.Fatalf("self-diff affected %v", im.AffectedPreds)
	}
	// A base-program edit reaches both predicates (Seen's cone includes
	// the ring variables the detector guard reads).
	baseEdit, _ := mustAnalyze(t, `
program watched

var x0 : 0..2
var x1 : 0..2
var alarm : bool
var t : 0..3

pred Legit  :: x0 == x1
pred Seen   :: alarm

detector mon : alarm, t

action move0     :: x0 == x1          -> x0 := (x0 + 2) % 3
action move1     :: x0 != x1          -> x1 := x0
action mon.tick  :: true              -> t := (t + 1) % 4
action mon.watch :: x0 == 0 & !alarm  -> alarm := true

fault corrupt :: true -> x1 := ?
`)
	im = AffectedBy(oldF.AST, baseEdit.AST)
	if !reflect.DeepEqual(im.AffectedPreds, []string{"Legit", "Seen"}) {
		t.Fatalf("affected preds = %v", im.AffectedPreds)
	}
}
