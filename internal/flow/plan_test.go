package flow

import (
	"testing"

	"detcorr/internal/explore"
	"detcorr/internal/gcl"
)

const planBase = `program p
var x : 0..3
var y : bool

pred P :: x == 0
pred Q :: y & P

action a :: x < 3  -> x := x + 1
action b :: P & !y -> y := true

fault f :: true -> x := ?
`

// planOf parses both sources and plans the old → new edit.
func planOf(t *testing.T, oldSrc, newSrc string) *Plan {
	t.Helper()
	oldAST, err := gcl.Parse(oldSrc)
	if err != nil {
		t.Fatalf("parse old: %v", err)
	}
	newAST, err := gcl.Parse(newSrc)
	if err != nil {
		t.Fatalf("parse new: %v", err)
	}
	return PlanRepair(oldAST, newAST)
}

func TestPlanRepairUnchangedFile(t *testing.T) {
	p := planOf(t, planBase, planBase)
	if !p.FileUnchanged() {
		t.Fatalf("identical sources must plan as unchanged: %+v", p)
	}
	if !p.Identity() || !p.AllPredsSame || !p.SameFaults || !p.SameDecls || !p.SameName {
		t.Errorf("unchanged facts incomplete: %+v", p)
	}
}

func TestPlanRepairClassification(t *testing.T) {
	cases := []struct {
		name   string
		newSrc string
		check  func(t *testing.T, p *Plan)
	}{
		{
			// Formatting-only change: same tokens, different whitespace.
			"whitespace",
			"program p\nvar x : 0..3\nvar y : bool\npred P :: x == 0\npred Q :: y & P\naction a :: x < 3 -> x := x + 1\naction b :: P & !y -> y := true\nfault f :: true -> x := ?\n",
			func(t *testing.T, p *Plan) {
				if !p.FileUnchanged() {
					t.Errorf("reformatting must plan as unchanged: %+v", p)
				}
			},
		},
		{
			// Guard edit on one action: that action alone is guard-dirty.
			"guard edit",
			"program p\nvar x : 0..3\nvar y : bool\npred P :: x == 0\npred Q :: y & P\naction a :: x < 2 -> x := x + 1\naction b :: P & !y -> y := true\nfault f :: true -> x := ?\n",
			func(t *testing.T, p *Plan) {
				if p.Graph == nil || p.Identity() {
					t.Fatalf("guard edit must yield a non-identity plan: %+v", p)
				}
				if p.Graph.Dirt[0] != explore.ActionGuardDirty || p.Graph.Dirt[1] != explore.ActionClean {
					t.Errorf("dirt = %v, want [guard-dirty clean]", p.Graph.Dirt)
				}
				if !p.AllPredsSame || !p.SameFaults {
					t.Errorf("a guard edit must not touch pred/fault sameness: %+v", p)
				}
			},
		},
		{
			// Assignment edit: full-dirty.
			"assign edit",
			"program p\nvar x : 0..3\nvar y : bool\npred P :: x == 0\npred Q :: y & P\naction a :: x < 3 -> x := x + 2\naction b :: P & !y -> y := true\nfault f :: true -> x := ?\n",
			func(t *testing.T, p *Plan) {
				if p.Graph == nil || p.Graph.Dirt[0] != explore.ActionFullDirty {
					t.Fatalf("assign edit must be full-dirty: %+v", p)
				}
			},
		},
		{
			// Action rename: the new name has no old counterpart (full-dirty,
			// OldIndex -1) and the old edge set must be detected as orphaned
			// via OldActions.
			"action rename",
			"program p\nvar x : 0..3\nvar y : bool\npred P :: x == 0\npred Q :: y & P\naction a2 :: x < 3 -> x := x + 1\naction b :: P & !y -> y := true\nfault f :: true -> x := ?\n",
			func(t *testing.T, p *Plan) {
				if p.Graph == nil || p.Graph.OldIndex[0] != -1 || p.Graph.Dirt[0] != explore.ActionFullDirty {
					t.Fatalf("renamed action must map to no old action: %+v", p.Graph)
				}
				if p.Graph.OldActions != 2 {
					t.Errorf("OldActions = %d, want 2", p.Graph.OldActions)
				}
			},
		},
		{
			// Predicate rename with references updated: guards expand to the
			// same signature through the new name, so actions stay clean, but
			// the pred set itself is not name-stable.
			"pred rename",
			"program p\nvar x : 0..3\nvar y : bool\npred R :: x == 0\npred Q :: y & R\naction a :: x < 3 -> x := x + 1\naction b :: R & !y -> y := true\nfault f :: true -> x := ?\n",
			func(t *testing.T, p *Plan) {
				if p.AllPredsSame {
					t.Errorf("a renamed pred must break AllPredsSame")
				}
				if p.SamePreds["R"] {
					t.Errorf("R has no old counterpart and must not be plan-same")
				}
				// The rename flows into b's guard text, so b is (at least)
				// guard-dirty; the conservative answer is the sound one.
				if p.Graph == nil || p.Graph.Dirt[0] != explore.ActionClean {
					t.Errorf("action a does not reference the pred and must stay clean: %+v", p.Graph)
				}
			},
		},
		{
			// Predicate body edit: every action and pred referencing it is
			// dirty through signature expansion.
			"pred body edit",
			"program p\nvar x : 0..3\nvar y : bool\npred P :: x == 1\npred Q :: y & P\naction a :: x < 3 -> x := x + 1\naction b :: P & !y -> y := true\nfault f :: true -> x := ?\n",
			func(t *testing.T, p *Plan) {
				if p.SamePreds["P"] || p.SamePreds["Q"] {
					t.Errorf("P and its transitive referrer Q must not be plan-same: %+v", p.SamePreds)
				}
				if p.Graph == nil || p.Graph.Dirt[1] != explore.ActionGuardDirty {
					t.Errorf("b guards on P and must be guard-dirty: %+v", p.Graph)
				}
				if p.Graph.Dirt[0] != explore.ActionClean {
					t.Errorf("a does not reference P and must stay clean: %+v", p.Graph)
				}
			},
		},
		{
			// Fault edit: graph plan is identity (program actions untouched)
			// but fault sameness breaks.
			"fault edit",
			"program p\nvar x : 0..3\nvar y : bool\npred P :: x == 0\npred Q :: y & P\naction a :: x < 3 -> x := x + 1\naction b :: P & !y -> y := true\nfault f :: x > 0 -> x := ?\n",
			func(t *testing.T, p *Plan) {
				if !p.Identity() {
					t.Errorf("fault edits must not dirty the program plan: %+v", p.Graph)
				}
				if p.SameFaults {
					t.Errorf("fault edit must break SameFaults")
				}
				if p.FileUnchanged() {
					t.Errorf("fault edit must break FileUnchanged")
				}
			},
		},
		{
			// Variable domain change: nothing survives, no graph plan.
			"var domain change",
			"program p\nvar x : 0..4\nvar y : bool\npred P :: x == 0\npred Q :: y & P\naction a :: x < 3 -> x := x + 1\naction b :: P & !y -> y := true\nfault f :: true -> x := ?\n",
			func(t *testing.T, p *Plan) {
				if p.Graph != nil {
					t.Errorf("a domain change must void the graph plan")
				}
				if len(p.SamePreds) != 0 || p.AllPredsSame || p.SameFaults {
					t.Errorf("no sameness may survive a domain change: %+v", p)
				}
			},
		},
		{
			// Program rename: only SameName breaks.
			"program rename",
			"program p2\nvar x : 0..3\nvar y : bool\npred P :: x == 0\npred Q :: y & P\naction a :: x < 3 -> x := x + 1\naction b :: P & !y -> y := true\nfault f :: true -> x := ?\n",
			func(t *testing.T, p *Plan) {
				if p.SameName {
					t.Errorf("rename must break SameName")
				}
				if !p.Identity() || !p.AllPredsSame || !p.SameFaults {
					t.Errorf("rename must preserve everything else: %+v", p)
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tc.check(t, planOf(t, planBase, tc.newSrc))
		})
	}
}

func TestPlanRepairDuplicateActionNames(t *testing.T) {
	dup := "program p\nvar x : 0..3\naction a :: x < 3 -> x := x + 1\naction a :: x > 0 -> x := x - 1\n"
	if p := planOf(t, dup, dup); p.Graph != nil {
		t.Errorf("duplicate action names must void the graph plan")
	}
}
