package flow

import (
	"fmt"
	"strings"

	"detcorr/internal/gcl"
)

var opText = map[gcl.Kind]string{
	gcl.OR: "|", gcl.AND: "&", gcl.NOT: "!", gcl.IMPLIES: "=>",
	gcl.EQ: "==", gcl.NEQ: "!=", gcl.LT: "<", gcl.LE: "<=",
	gcl.GT: ">", gcl.GE: ">=", gcl.PLUS: "+", gcl.MINUS: "-",
	gcl.STAR: "*", gcl.PERCENT: "%",
}

// renderExpr writes a fully parenthesized, position-free rendering of the
// expression: two expressions render equal iff they are structurally
// identical, which is what the AffectedBy diff compares.
func renderExpr(sb *strings.Builder, e gcl.Expr) {
	switch n := e.(type) {
	case *gcl.BoolLit:
		fmt.Fprintf(sb, "%v", n.Value)
	case *gcl.IntLit:
		fmt.Fprintf(sb, "%d", n.Value)
	case *gcl.Ref:
		sb.WriteString(n.Name)
	case *gcl.Unary:
		sb.WriteString(opText[n.Op])
		sb.WriteByte('(')
		renderExpr(sb, n.X)
		sb.WriteByte(')')
	case *gcl.Binary:
		sb.WriteByte('(')
		renderExpr(sb, n.L)
		sb.WriteByte(' ')
		sb.WriteString(opText[n.Op])
		sb.WriteByte(' ')
		renderExpr(sb, n.R)
		sb.WriteByte(')')
	}
}

// ExprString renders an expression canonically (fully parenthesized).
func ExprString(e gcl.Expr) string {
	var sb strings.Builder
	renderExpr(&sb, e)
	return sb.String()
}

// renderType writes a canonical rendering of a domain declaration.
func renderType(sb *strings.Builder, t gcl.TypeExpr) {
	switch t.Kind {
	case gcl.TypeBool:
		sb.WriteString("bool")
	case gcl.TypeRange:
		fmt.Fprintf(sb, "%d..%d", t.Lo, t.Hi)
	case gcl.TypeEnum:
		sb.WriteString("enum(")
		sb.WriteString(strings.Join(t.Names, ","))
		sb.WriteByte(')')
	}
}

// renderAST writes a canonical, position-free rendering of a file's
// semantic content: variables, predicates, program actions, faults. Names
// and declaration order count; source positions and formatting do not.
func renderAST(ast *gcl.FileAST) string {
	var sb strings.Builder
	for _, d := range ast.Vars {
		sb.WriteString("var ")
		sb.WriteString(d.Name)
		sb.WriteByte(':')
		renderType(&sb, d.Type)
		sb.WriteByte('\n')
	}
	for _, d := range ast.Preds {
		sb.WriteString("pred ")
		sb.WriteString(d.Name)
		sb.WriteString("::")
		renderExpr(&sb, d.Expr)
		sb.WriteByte('\n')
	}
	renderActions(&sb, "action ", ast.Actions)
	renderActions(&sb, "fault ", ast.Faults)
	return sb.String()
}

func renderActions(sb *strings.Builder, kw string, decls []gcl.ActionDecl) {
	for i := range decls {
		d := &decls[i]
		sb.WriteString(kw)
		sb.WriteString(d.Name)
		sb.WriteString("::")
		renderExpr(sb, d.Guard)
		sb.WriteString("->")
		for j, a := range d.Assigns {
			if j > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(a.Var)
			sb.WriteString(":=")
			if a.Expr == nil {
				sb.WriteByte('?')
			} else {
				renderExpr(sb, a.Expr)
			}
		}
		sb.WriteByte('\n')
	}
}
