package flow

import (
	"testing"

	"detcorr/internal/fault"
	"detcorr/internal/gcl"
	"detcorr/internal/spec"
)

// affBase is the soundness-table base system: P's closure holds (ax is a
// self-loop inside P), Q's fails (ay leaves it), and Both inherits Q's
// failure; the fault fx is disabled on P-states, so the fault-composed
// closure of P holds too.
const affBase = `program aff
var x : 0..2
var y : 0..2

pred P    :: x == 0
pred Q    :: y == 0
pred Both :: P & Q

action ax :: x == 0 -> x := 0
action ay :: y == 0 -> y := 1

fault fx :: x == 1 -> x := 2
`

// closureVerdicts brute-forces every predicate's closure verdict on the
// program alone and on the fault-composed program. A verdict is the full
// error text, so any witness change counts as a changed verdict.
func closureVerdicts(t *testing.T, src string) (prog, composed map[string]string) {
	t.Helper()
	f, err := gcl.ParseAndCompile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	comp := f.Program
	if !f.Faults.Empty() {
		if comp, _, err = fault.Compose(f.Program, f.Faults); err != nil {
			t.Fatalf("compose: %v", err)
		}
	}
	verdict := func(err error) string {
		if err == nil {
			return "ok"
		}
		return err.Error()
	}
	prog, composed = map[string]string{}, map[string]string{}
	for name, pred := range f.Preds {
		prog[name] = verdict(spec.CheckClosed(f.Program, pred))
		composed[name] = verdict(spec.CheckClosed(comp, pred))
	}
	return prog, composed
}

// assertAffectedSound checks the Impact soundness contract against the
// brute force: a predicate whose program-closure verdict changed must be
// in AffectedPreds; one whose fault-composed verdict changed must be in
// AffectedPreds or covered by a non-empty ChangedFaults; a predicate new
// in this revision must always be affected.
func assertAffectedSound(t *testing.T, oldSrc, newSrc string) *Impact {
	t.Helper()
	oldAST, err := gcl.Parse(oldSrc)
	if err != nil {
		t.Fatalf("parse old: %v", err)
	}
	newAST, err := gcl.Parse(newSrc)
	if err != nil {
		t.Fatalf("parse new: %v", err)
	}
	im := AffectedBy(oldAST, newAST)
	affected := map[string]bool{}
	for _, n := range im.AffectedPreds {
		affected[n] = true
	}
	oldProg, oldComp := closureVerdicts(t, oldSrc)
	newProg, newComp := closureVerdicts(t, newSrc)
	for name, nv := range newProg {
		ov, existed := oldProg[name]
		if !existed {
			if !affected[name] {
				t.Errorf("pred %s is new in this revision and must be affected", name)
			}
			continue
		}
		if ov != nv && !affected[name] {
			t.Errorf("pred %s: closure verdict changed (%q -> %q) but not in AffectedPreds %v",
				name, ov, nv, im.AffectedPreds)
		}
		if oldComp[name] != newComp[name] && !affected[name] && len(im.ChangedFaults) == 0 {
			t.Errorf("pred %s: fault-composed verdict changed but neither AffectedPreds nor ChangedFaults flags it",
				name)
		}
	}
	return im
}

// TestAffectedBySoundness is the satellite edge-case table: each entry
// edits affBase one way and asserts AffectedPreds is a superset of the
// brute-force verdict diff, plus per-case tightness expectations.
func TestAffectedBySoundness(t *testing.T) {
	cases := []struct {
		name   string
		newSrc string
		check  func(t *testing.T, im *Impact)
	}{
		{
			// ay stops leaving Q: Q and Both flip to closed.
			"action edit flips verdicts",
			"program aff\nvar x : 0..2\nvar y : 0..2\npred P :: x == 0\npred Q :: y == 0\npred Both :: P & Q\naction ax :: x == 0 -> x := 0\naction ay :: y == 0 -> y := 0\nfault fx :: x == 1 -> x := 2\n",
			func(t *testing.T, im *Impact) {
				for _, p := range im.AffectedPreds {
					if p == "P" {
						t.Errorf("ay writes only y, so P must stay unaffected: %v", im.AffectedPreds)
					}
				}
			},
		},
		{
			// A new action leaves P: P and Both flip to failing.
			"action added",
			"program aff\nvar x : 0..2\nvar y : 0..2\npred P :: x == 0\npred Q :: y == 0\npred Both :: P & Q\naction ax :: x == 0 -> x := 0\naction ay :: y == 0 -> y := 1\naction az :: x == 0 -> x := 1\nfault fx :: x == 1 -> x := 2\n",
			func(t *testing.T, im *Impact) {
				if len(im.ChangedActions) != 1 || im.ChangedActions[0] != "az" {
					t.Errorf("changed actions = %v, want [az]", im.ChangedActions)
				}
			},
		},
		{
			// Removing ay flips Q and Both back to closed.
			"action removed",
			"program aff\nvar x : 0..2\nvar y : 0..2\npred P :: x == 0\npred Q :: y == 0\npred Both :: P & Q\naction ax :: x == 0 -> x := 0\nfault fx :: x == 1 -> x := 2\n",
			nil,
		},
		{
			// Pred rename with the reference updated: R is new by name and
			// must be affected; Both's slice mentions the renamed pred.
			"pred rename",
			"program aff\nvar x : 0..2\nvar y : 0..2\npred P :: x == 0\npred R :: y == 0\npred Both :: P & R\naction ax :: x == 0 -> x := 0\naction ay :: y == 0 -> y := 1\nfault fx :: x == 1 -> x := 2\n",
			func(t *testing.T, im *Impact) {
				found := false
				for _, p := range im.AffectedPreds {
					found = found || p == "R"
				}
				if !found {
					t.Errorf("renamed pred R must be affected: %v", im.AffectedPreds)
				}
			},
		},
		{
			// Pred rename that reuses the old name for a different body:
			// the name Q survives but means something else now.
			"pred name reused",
			"program aff\nvar x : 0..2\nvar y : 0..2\npred P :: x == 0\npred Q :: y == 1\npred Both :: P & Q\naction ax :: x == 0 -> x := 0\naction ay :: y == 0 -> y := 1\nfault fx :: x == 1 -> x := 2\n",
			func(t *testing.T, im *Impact) {
				found := false
				for _, p := range im.AffectedPreds {
					found = found || p == "Q"
				}
				if !found {
					t.Errorf("rebound pred Q must be affected: %v", im.AffectedPreds)
				}
			},
		},
		{
			// The fault now fires on P-states: only the composed verdict
			// changes, which ChangedFaults must cover.
			"fault guard edit",
			"program aff\nvar x : 0..2\nvar y : 0..2\npred P :: x == 0\npred Q :: y == 0\npred Both :: P & Q\naction ax :: x == 0 -> x := 0\naction ay :: y == 0 -> y := 1\nfault fx :: x == 0 -> x := 2\n",
			func(t *testing.T, im *Impact) {
				if len(im.ChangedFaults) == 0 {
					t.Error("fault guard edit must report a changed fault")
				}
			},
		},
		{
			// A fault added that breaks P's composed closure.
			"fault added",
			"program aff\nvar x : 0..2\nvar y : 0..2\npred P :: x == 0\npred Q :: y == 0\npred Both :: P & Q\naction ax :: x == 0 -> x := 0\naction ay :: y == 0 -> y := 1\nfault fx :: x == 1 -> x := 2\nfault fp :: x == 0 -> x := 1\n",
			func(t *testing.T, im *Impact) {
				if len(im.ChangedFaults) == 0 {
					t.Error("added fault must report a changed fault")
				}
			},
		},
		{
			// Fault section emptied.
			"fault removed",
			"program aff\nvar x : 0..2\nvar y : 0..2\npred P :: x == 0\npred Q :: y == 0\npred Both :: P & Q\naction ax :: x == 0 -> x := 0\naction ay :: y == 0 -> y := 1\n",
			func(t *testing.T, im *Impact) {
				if len(im.ChangedFaults) != 1 || im.ChangedFaults[0] != "fx" {
					t.Errorf("changed faults = %v, want [fx]", im.ChangedFaults)
				}
			},
		},
		{
			// Variable rename everywhere: every pred reading it is affected.
			"var rename",
			"program aff\nvar w : 0..2\nvar y : 0..2\npred P :: w == 0\npred Q :: y == 0\npred Both :: P & Q\naction ax :: w == 0 -> w := 0\naction ay :: y == 0 -> y := 1\nfault fx :: w == 1 -> w := 2\n",
			func(t *testing.T, im *Impact) {
				if len(im.ChangedVars) == 0 {
					t.Error("var rename must report changed vars")
				}
				for _, want := range []string{"P", "Both"} {
					found := false
					for _, p := range im.AffectedPreds {
						found = found || p == want
					}
					if !found {
						t.Errorf("pred %s reads the renamed var and must be affected: %v", want, im.AffectedPreds)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			im := assertAffectedSound(t, affBase, tc.newSrc)
			if tc.check != nil {
				tc.check(t, im)
			}
		})
	}
}
