package flow

import (
	"fmt"
	"strings"

	"detcorr/internal/gcl"
)

// Slice is a compiled cone-of-influence slice of a file: the program
// restricted to the variables that can influence the target predicates and
// the actions that write them. Soundness (argued in DESIGN.md §3i): kept
// actions' guards and cone-variable effects are functions of cone
// variables only, so the projection of every full-space computation onto
// the cone variables is a computation of the slice and vice versa —
// closure, safeness, stability, and fair-liveness verdicts about
// cone-determined predicates coincide exactly.
type Slice struct {
	File        *gcl.File // compiled sliced program (no faults, no slicer registration)
	Targets     []string  // sorted target predicate names
	ConeVars    []string
	KeptActions []string

	FullVars, FullActions int
	// Static state-space sizes (products of domain sizes); float64 because
	// full products overflow int64 long before they stop being meaningful.
	FullStates, SlicedStates float64
}

// Reduction is the static state-space shrink factor (≥ 1).
func (s *Slice) Reduction() float64 {
	if s.SlicedStates == 0 {
		return 1
	}
	return s.FullStates / s.SlicedStates
}

// SliceFile computes and compiles the slice of f for the given target
// predicates. Every target must be a predicate declared in the file and
// the cone must be non-empty. The sliced file is an ordinary compiled
// file: its predicates (the targets and whatever they reference) evaluate
// over sliced states, and its program carries kernel bytecode like any
// other.
func SliceFile(f *gcl.File, targets ...string) (*Slice, error) {
	if f == nil || f.AST == nil {
		return nil, fmt.Errorf("flow: no AST to slice")
	}
	return sliceInfo(Analyze(f.AST), f, targets...)
}

func sliceInfo(in *Info, f *gcl.File, targets ...string) (*Slice, error) {
	cone, err := in.Cone(targets...)
	if err != nil {
		return nil, err
	}
	if len(cone.Vars) == 0 {
		return nil, fmt.Errorf("flow: cone of %v is empty", targets)
	}
	ast := sliceAST(in, cone)
	sf, err := gcl.Compile(ast)
	if err != nil {
		return nil, fmt.Errorf("flow: compiling slice %s: %w", ast.Name, err)
	}
	sl := &Slice{
		File:        sf,
		Targets:     cone.Targets,
		ConeVars:    cone.Vars,
		FullVars:    len(in.Vars),
		FullActions: len(in.Actions),
	}
	for _, ai := range cone.Kept {
		sl.KeptActions = append(sl.KeptActions, in.Actions[ai].Name)
	}
	sl.FullStates = statesProduct(in.AST.Vars, nil)
	sl.SlicedStates = statesProduct(in.AST.Vars, cone)
	return sl, nil
}

// statesProduct multiplies the domain sizes of the declared variables —
// all of them, or only those in the cone.
func statesProduct(vars []gcl.VarDecl, cone *Cone) float64 {
	product := 1.0
	idx := 0
	seen := map[string]bool{}
	for _, d := range vars {
		if seen[d.Name] {
			continue
		}
		seen[d.Name] = true
		in := cone == nil || cone.vars.has(idx)
		idx++
		if !in {
			continue
		}
		switch d.Type.Kind {
		case gcl.TypeBool:
			product *= 2
		case gcl.TypeRange:
			product *= float64(d.Type.Hi - d.Type.Lo + 1)
		case gcl.TypeEnum:
			product *= float64(len(d.Type.Names))
		}
	}
	return product
}

// sliceAST constructs the reduced file: cone variables, the needed
// predicates, and the kept actions with their assignments filtered to cone
// targets. Faults, components, and spans are metadata of the full file and
// are dropped — slices exist only to answer program checks.
func sliceAST(in *Info, cone *Cone) *gcl.FileAST {
	out := &gcl.FileAST{Name: in.AST.Name + "@" + strings.Join(cone.Targets, "+")}
	keptConsts := map[string]bool{}
	for _, d := range in.AST.Vars {
		if idx, ok := in.varIdx[d.Name]; ok && cone.vars.has(idx) {
			out.Vars = append(out.Vars, d)
			for _, name := range d.Type.Names {
				keptConsts[name] = true
			}
		}
	}
	// Enum values of dropped variables can still appear in kept
	// expressions (they are plain integer constants); rewrite those
	// references to literals so the slice compiles standalone.
	consts := map[string]int{}
	for _, d := range in.AST.Vars {
		for i, name := range d.Type.Names {
			consts[name] = i
		}
	}
	rw := &sliceRewriter{keptConsts: keptConsts, consts: consts}

	// Needed predicates: the targets plus everything kept expressions
	// reference, transitively. Predicates may only reference earlier
	// predicates, so one backward pass over the declarations closes the
	// set.
	needed := map[string]bool{}
	for _, t := range cone.Targets {
		needed[t] = true
	}
	predNames := map[string]bool{}
	for i := range in.Preds {
		predNames[in.Preds[i].Name] = true
	}
	for _, ai := range cone.Kept {
		d := in.Actions[ai].Decl
		collectPredRefs(d.Guard, predNames, needed)
		for _, a := range d.Assigns {
			if a.Expr == nil {
				continue
			}
			if idx, ok := in.varIdx[a.Var]; ok && cone.vars.has(idx) {
				collectPredRefs(a.Expr, predNames, needed)
			}
		}
	}
	for i := len(in.Preds) - 1; i >= 0; i-- {
		if needed[in.Preds[i].Name] {
			collectPredRefs(in.Preds[i].Decl.Expr, predNames, needed)
		}
	}
	for i := range in.Preds {
		d := in.Preds[i].Decl
		if !needed[d.Name] {
			continue
		}
		nd := *d
		nd.Expr = rw.rewrite(d.Expr)
		out.Preds = append(out.Preds, nd)
	}
	for _, ai := range cone.Kept {
		d := in.Actions[ai].Decl
		nd := gcl.ActionDecl{Name: d.Name, Guard: rw.rewrite(d.Guard), At: d.At}
		for _, a := range d.Assigns {
			idx, ok := in.varIdx[a.Var]
			if !ok || !cone.vars.has(idx) {
				continue
			}
			na := a
			if na.Expr != nil {
				na.Expr = rw.rewrite(na.Expr)
			}
			nd.Assigns = append(nd.Assigns, na)
		}
		out.Actions = append(out.Actions, nd)
	}
	return out
}

// collectPredRefs marks every predicate referenced by the expression.
func collectPredRefs(e gcl.Expr, predNames, needed map[string]bool) {
	switch n := e.(type) {
	case *gcl.Ref:
		if predNames[n.Name] {
			needed[n.Name] = true
		}
	case *gcl.Unary:
		collectPredRefs(n.X, predNames, needed)
	case *gcl.Binary:
		collectPredRefs(n.L, predNames, needed)
		collectPredRefs(n.R, predNames, needed)
	}
}

// sliceRewriter replaces references to enum constants whose declaring
// variable was sliced away with the equivalent integer literal. Everything
// else is shared with the original AST (expressions are immutable).
type sliceRewriter struct {
	keptConsts map[string]bool
	consts     map[string]int
}

func (rw *sliceRewriter) rewrite(e gcl.Expr) gcl.Expr {
	switch n := e.(type) {
	case *gcl.Ref:
		if v, ok := rw.consts[n.Name]; ok && !rw.keptConsts[n.Name] {
			return &gcl.IntLit{Value: v, At: n.At}
		}
		return n
	case *gcl.Unary:
		x := rw.rewrite(n.X)
		if x == n.X {
			return n
		}
		return &gcl.Unary{Op: n.Op, X: x, At: n.At}
	case *gcl.Binary:
		l, r := rw.rewrite(n.L), rw.rewrite(n.R)
		if l == n.L && r == n.R {
			return n
		}
		return &gcl.Binary{Op: n.Op, L: l, R: r, At: n.At}
	default:
		return e
	}
}
