// Package flow implements whole-program dependence analysis over parsed
// GCL files: exact read/write sets for every action (guard reads,
// right-hand-side reads, assignment targets), transitive read sets for
// every predicate, a variable dependence graph, and the backward
// cone-of-influence closure that drives sound state-space slicing.
//
// The paper's composition theorems hinge on non-interference — a detector
// must monitor without perturbing, a corrector must confine its writes to
// the component it repairs — and the read/write sets computed here are
// what dclint's DC200-series interference diagnostics check those claims
// against. The cone computation is the other consumer: a verdict about a
// predicate P can only depend on the variables P reads and, transitively,
// on whatever feeds the actions that write them, so everything outside the
// cone can be sliced away before the exploration kernel ever runs (see
// Slice and Certify).
package flow

import (
	"fmt"
	"sort"

	"detcorr/internal/gcl"
)

// VarRead is one direct variable reference with its source position.
type VarRead struct {
	Name string
	At   gcl.Pos
}

// AssignFlow is the flow view of one assignment target: the variable
// written and the variables its right-hand side reads ('?' reads nothing).
type AssignFlow struct {
	Var   string
	Reads []string
	Wild  bool
	At    gcl.Pos

	varIdx int
	reads  bitset
}

// ActionFlow is the flow view of one action or fault: the exact variable
// sets its guard and right-hand sides read and its assignments write.
type ActionFlow struct {
	Name       string
	Fault      bool
	Component  int // index into Info.Components; -1 for the base program
	GuardReads []string
	Reads      []string // GuardReads ∪ every right-hand side's reads
	Writes     []string
	Assigns    []AssignFlow
	Decl       *gcl.ActionDecl

	guardReads bitset
	reads      bitset
	writes     bitset
}

// PredFlow is the flow view of one declared predicate. Reads is
// transitive: references to earlier predicates are expanded into their
// variable reads. DirectReads keeps the syntactic variable references with
// positions for diagnostics.
type PredFlow struct {
	Name        string
	Reads       []string
	DirectReads []VarRead
	Decl        *gcl.PredDecl

	reads bitset
}

// Component is a declared detector/corrector component together with the
// program actions that belong to it (actions named "<component>.<rest>").
type Component struct {
	Kind    gcl.ComponentKind
	Name    string
	Scope   []string // declared write scope; nil when undeclared
	Actions []int    // indices into Info.Actions
	Decl    *gcl.ComponentDecl
}

// DepEdge records one dependence "From flows to To through Action": the
// action writes To and reads From in its guard or in the right-hand side
// assigned to To.
type DepEdge struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Action string `json:"action"`
}

// Info is the dependence analysis of one parsed file.
type Info struct {
	AST        *gcl.FileAST
	Vars       []string // declaration order
	Actions    []ActionFlow
	Faults     []ActionFlow
	Preds      []PredFlow
	Components []Component
	Span       []string // declared fault span (union); nil when undeclared

	varIdx  map[string]int
	predIdx map[string]int
	words   int
}

// Analyze computes the dependence analysis of a parsed file. Identifiers
// that do not resolve (undeclared variables, unknown names) contribute no
// reads or writes; the compiler and dclint report those separately, so
// Analyze itself never fails.
func Analyze(ast *gcl.FileAST) *Info {
	in := &Info{
		AST:     ast,
		varIdx:  make(map[string]int, len(ast.Vars)),
		predIdx: make(map[string]int, len(ast.Preds)),
	}
	consts := map[string]bool{}
	for _, d := range ast.Vars {
		if _, dup := in.varIdx[d.Name]; dup {
			continue
		}
		in.varIdx[d.Name] = len(in.Vars)
		in.Vars = append(in.Vars, d.Name)
		for _, name := range d.Type.Names {
			consts[name] = true
		}
	}
	in.words = (len(in.Vars) + 63) / 64

	// Predicates first: actions may reference them in guards, and their
	// transitive read sets are the cone seeds.
	for i := range ast.Preds {
		d := &ast.Preds[i]
		pf := PredFlow{Name: d.Name, Decl: d, reads: newBitset(in.words)}
		in.walkExpr(d.Expr, consts, pf.reads, &pf.DirectReads)
		pf.Reads = in.names(pf.reads)
		if _, dup := in.predIdx[d.Name]; !dup {
			in.predIdx[d.Name] = len(in.Preds)
		}
		in.Preds = append(in.Preds, pf)
	}

	in.Actions = in.analyzeActions(ast.Actions, false, consts)
	in.Faults = in.analyzeActions(ast.Faults, true, consts)

	// Components and their member actions (membership by name prefix).
	for i := range ast.Components {
		d := &ast.Components[i]
		comp := Component{Kind: d.Kind, Name: d.Name, Decl: d}
		for _, sv := range d.Scope {
			comp.Scope = append(comp.Scope, sv.Name)
		}
		if comp.Scope == nil && len(d.Scope) > 0 {
			comp.Scope = []string{}
		}
		prefix := d.Name + "."
		for ai := range in.Actions {
			if hasPrefix(in.Actions[ai].Name, prefix) {
				in.Actions[ai].Component = len(in.Components)
				comp.Actions = append(comp.Actions, ai)
			}
		}
		in.Components = append(in.Components, comp)
	}

	// Span declarations union into one set, in declaration order.
	if len(ast.Spans) > 0 {
		span := newBitset(in.words)
		for _, sd := range ast.Spans {
			for _, sv := range sd.Vars {
				if idx, ok := in.varIdx[sv.Name]; ok {
					span.set(idx)
				}
			}
		}
		in.Span = in.names(span)
	}
	return in
}

func (in *Info) analyzeActions(decls []gcl.ActionDecl, faults bool, consts map[string]bool) []ActionFlow {
	out := make([]ActionFlow, 0, len(decls))
	for i := range decls {
		d := &decls[i]
		af := ActionFlow{
			Name:       d.Name,
			Fault:      faults,
			Component:  -1,
			Decl:       d,
			guardReads: newBitset(in.words),
			reads:      newBitset(in.words),
			writes:     newBitset(in.words),
		}
		in.walkExpr(d.Guard, consts, af.guardReads, nil)
		af.reads.or(af.guardReads)
		for _, a := range d.Assigns {
			as := AssignFlow{Var: a.Var, Wild: a.Expr == nil, At: a.At, varIdx: -1, reads: newBitset(in.words)}
			if idx, ok := in.varIdx[a.Var]; ok {
				as.varIdx = idx
				af.writes.set(idx)
			}
			if a.Expr != nil {
				in.walkExpr(a.Expr, consts, as.reads, nil)
				af.reads.or(as.reads)
			}
			as.Reads = in.names(as.reads)
			af.Assigns = append(af.Assigns, as)
		}
		af.GuardReads = in.names(af.guardReads)
		af.Reads = in.names(af.reads)
		af.Writes = in.names(af.writes)
		out = append(out, af)
	}
	return out
}

// walkExpr accumulates the variable reads of an expression into set.
// References to earlier predicates expand to that predicate's transitive
// reads; enum constants read nothing. When direct is non-nil, syntactic
// variable references are also recorded with their positions.
func (in *Info) walkExpr(e gcl.Expr, consts map[string]bool, set bitset, direct *[]VarRead) {
	switch n := e.(type) {
	case *gcl.Ref:
		if idx, ok := in.varIdx[n.Name]; ok {
			set.set(idx)
			if direct != nil {
				*direct = append(*direct, VarRead{Name: n.Name, At: n.At})
			}
			return
		}
		if consts[n.Name] {
			return
		}
		if pi, ok := in.predIdx[n.Name]; ok {
			set.or(in.Preds[pi].reads)
		}
	case *gcl.Unary:
		in.walkExpr(n.X, consts, set, direct)
	case *gcl.Binary:
		in.walkExpr(n.L, consts, set, direct)
		in.walkExpr(n.R, consts, set, direct)
	}
}

// names renders a bitset as variable names in declaration order.
func (in *Info) names(b bitset) []string {
	out := []string{}
	for i, name := range in.Vars {
		if b.has(i) {
			out = append(out, name)
		}
	}
	return out
}

// Pred returns the flow view of a declared predicate.
func (in *Info) Pred(name string) (*PredFlow, bool) {
	i, ok := in.predIdx[name]
	if !ok {
		return nil, false
	}
	return &in.Preds[i], true
}

// VarIndex returns a variable's declaration index.
func (in *Info) VarIndex(name string) (int, bool) {
	i, ok := in.varIdx[name]
	return i, ok
}

// DepEdges enumerates the variable dependence graph: one edge per
// (reader, writer, action) triple, ordered by action then by variable
// declaration order.
func (in *Info) DepEdges() []DepEdge {
	var out []DepEdge
	for ai := range in.Actions {
		a := &in.Actions[ai]
		for _, as := range a.Assigns {
			if as.varIdx < 0 {
				continue
			}
			seen := newBitset(in.words)
			seen.or(a.guardReads)
			seen.or(as.reads)
			for i, from := range in.Vars {
				if seen.has(i) {
					out = append(out, DepEdge{From: from, To: as.Var, Action: a.Name})
				}
			}
		}
	}
	return out
}

// Cone is the backward cone of influence of a set of target predicates:
// the variables that can affect the targets' values along any execution,
// and the actions that write into that set.
type Cone struct {
	Targets []string
	Vars    []string // cone variables, declaration order
	Kept    []int    // indices of kept program actions

	vars bitset
}

// Contains reports whether the cone includes the variable.
func (c *Cone) Contains(in *Info, name string) bool {
	i, ok := in.varIdx[name]
	return ok && c.vars.has(i)
}

// Cone computes the backward closure of the target predicates: seed with
// every variable a target reads, then repeatedly add the guard reads and
// relevant right-hand-side reads of every action that writes a cone
// variable, to fixpoint. Faults are not part of the program's own
// transition relation and are excluded; fault-composed checks run on
// composed programs the slicer never touches.
func (in *Info) Cone(targets ...string) (*Cone, error) {
	c := &Cone{Targets: append([]string(nil), targets...), vars: newBitset(in.words)}
	sort.Strings(c.Targets)
	for _, t := range targets {
		pf, ok := in.Pred(t)
		if !ok {
			return nil, fmt.Errorf("flow: no predicate %q", t)
		}
		c.vars.or(pf.reads)
	}
	for propagate(in.Actions, c.vars) {
	}
	for ai := range in.Actions {
		if in.Actions[ai].writes.intersects(c.vars) {
			c.Kept = append(c.Kept, ai)
		}
	}
	c.Vars = in.names(c.vars)
	return c, nil
}

// propagate performs one round of the cone fixpoint: for every action
// writing a cone variable, add its guard reads and the reads of each
// right-hand side assigned to a cone variable. Reports whether the cone
// grew. This is the analysis hot path — quadratic rounds over potentially
// thousands of composed actions — and stays allocation-free.
//
//dc:zeroalloc
func propagate(actions []ActionFlow, cone bitset) bool {
	changed := false
	for ai := range actions {
		a := &actions[ai]
		if !a.writes.intersects(cone) {
			continue
		}
		if cone.orChanged(a.guardReads) {
			changed = true
		}
		for i := range a.Assigns {
			as := &a.Assigns[i]
			if as.varIdx >= 0 && cone.has(as.varIdx) && cone.orChanged(as.reads) {
				changed = true
			}
		}
	}
	return changed
}

func hasPrefix(s, prefix string) bool {
	return len(s) > len(prefix) && s[:len(prefix)] == prefix
}
