package reset

import (
	"testing"

	"detcorr/internal/fault"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

func TestLineIsCorrector(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		sys, err := NewLine(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.AsCorrector().Check(); err != nil {
			t.Errorf("line(n=%d): tree should correct itself from any state: %v", n, err)
		}
	}
}

func TestRingTopology(t *testing.T) {
	// A 4-cycle: 0-1-2-3-0.
	adj := [][]int{{1, 3}, {0, 2}, {1, 3}, {2, 0}}
	sys, err := New(adj)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AsCorrector().Check(); err != nil {
		t.Errorf("ring: tree should correct itself from any state: %v", err)
	}
}

func TestTreeClosedAndConverges(t *testing.T) {
	sys := MustNewLine(3)
	if err := spec.CheckClosed(sys.Program, sys.Tree); err != nil {
		t.Errorf("tree states should be closed: %v", err)
	}
	if err := spec.CheckConverges(sys.Program, state.True, sys.Tree); err != nil {
		t.Errorf("repair should converge to the tree: %v", err)
	}
}

func TestNonmaskingUnderCorruption(t *testing.T) {
	sys := MustNewLine(3)
	rep := fault.CheckNonmasking(sys.Program, sys.Corruption, sys.Spec, state.True, sys.Tree)
	if !rep.OK() {
		t.Errorf("tree maintenance should be nonmasking tolerant to pointer corruption: %v", rep.Err)
	}
}

func TestTreeStatesAreFixpoints(t *testing.T) {
	// In a legitimate state no repair action is enabled: the corrector is
	// silent once the structure is correct.
	sys := MustNewLine(4)
	err := sys.Schema.ForEachState(func(s state.State) bool {
		if sys.Tree.Holds(s) && !sys.Program.Deadlocked(s) {
			t.Errorf("repair enabled in legitimate state %s", s)
			return false
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParentAndDistHelpers(t *testing.T) {
	sys := MustNewLine(3)
	// Node 1's neighbors are [0, 2]; parent index 0 means node 0.
	s, err := state.FromMap(sys.Schema, map[string]int{"p.1": 0, "d.1": 1, "p.2": 0, "d.2": 2})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Parent(s, 1) != 0 || sys.Dist(s, 1) != 1 || sys.Dist(s, 0) != 0 {
		t.Error("helper accessors wrong")
	}
	if !sys.Tree.Holds(s) {
		t.Errorf("state %s should be a legitimate tree", s)
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewLine(1); err == nil {
		t.Error("n=1 must be rejected")
	}
	if _, err := New([][]int{{1}, {0}, {}}); err == nil {
		t.Error("disconnected graph must be rejected")
	}
	if _, err := New([][]int{{5}, {0}}); err == nil {
		t.Error("out-of-range adjacency must be rejected")
	}
}
