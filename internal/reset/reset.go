// Package reset implements spanning-tree maintenance, the substrate of
// distributed reset — two more of the applications the paper lists for the
// component-based method (Section 1). Each non-root process keeps a parent
// pointer and a distance estimate over a fixed communication graph; the
// legitimate states are those where the pointers form a BFS tree rooted at
// process 0. Transient faults corrupt pointers and distances; the repair
// actions are a corrector in the paper's sense: "tree corrects tree", with
// convergence by a decreasing-distance argument. A distributed reset wave
// can then be diffused down the repaired tree.
package reset

import (
	"fmt"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

// System is a tree-maintenance instance over a fixed undirected graph.
type System struct {
	N      int
	Adj    [][]int // adjacency lists; must be connected, node 0 is the root
	Schema *state.Schema

	Program *guarded.Program

	// Tree holds in states where the parent pointers and distance
	// estimates form a correct BFS tree rooted at 0.
	Tree state.Predicate

	Spec spec.Problem

	// Corruption arbitrarily rewrites one process's parent pointer and
	// distance estimate.
	Corruption fault.Class

	bfs []int // true BFS distance per node
}

func parentVar(i int) string { return fmt.Sprintf("p.%d", i) }
func distVar(i int) string   { return fmt.Sprintf("d.%d", i) }

// NewLine builds the system over a line topology 0–1–…–n-1 (the smallest
// interesting graph; rings and meshes work the same way via New).
func NewLine(n int) (*System, error) {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			adj[i] = append(adj[i], i-1)
		}
		if i < n-1 {
			adj[i] = append(adj[i], i+1)
		}
	}
	return New(adj)
}

// New builds the system over the given adjacency structure; node 0 is the
// root and the graph must be connected.
func New(adj [][]int) (*System, error) {
	n := len(adj)
	if n < 2 {
		return nil, fmt.Errorf("reset: need at least 2 nodes (got %d)", n)
	}
	bfs, err := bfsDistances(adj)
	if err != nil {
		return nil, err
	}
	maxDist := 0
	for _, d := range bfs {
		if d > maxDist {
			maxDist = d
		}
	}
	vars := make([]state.Var, 0, 2*(n-1))
	for i := 1; i < n; i++ {
		// The parent pointer indexes into i's adjacency list; the distance
		// estimate ranges over 0..n-1 (any corruption stays in-domain).
		vars = append(vars,
			state.IntVar(parentVar(i), len(adj[i])),
			state.IntVar(distVar(i), n),
		)
	}
	sch, err := state.NewSchema(vars...)
	if err != nil {
		return nil, err
	}
	sys := &System{N: n, Adj: adj, Schema: sch, bfs: bfs}
	if err := sys.build(); err != nil {
		return nil, err
	}
	return sys, nil
}

// MustNewLine is NewLine but panics on invalid parameters.
func MustNewLine(n int) *System {
	sys, err := NewLine(n)
	if err != nil {
		panic(err)
	}
	return sys
}

func bfsDistances(adj [][]int) ([]int, error) {
	n := len(adj)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[0] = 0
	queue := []int{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj[v] {
			if w < 0 || w >= n {
				return nil, fmt.Errorf("reset: adjacency out of range: %d", w)
			}
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	for i, d := range dist {
		if d < 0 {
			return nil, fmt.Errorf("reset: graph not connected (node %d unreachable)", i)
		}
	}
	return dist, nil
}

// Parent returns node i's current parent in s.
func (sys *System) Parent(s state.State, i int) int {
	return sys.Adj[i][s.GetName(parentVar(i))]
}

// Dist returns node i's current distance estimate (node 0 is always 0).
func (sys *System) Dist(s state.State, i int) int {
	if i == 0 {
		return 0
	}
	return s.GetName(distVar(i))
}

func (sys *System) build() error {
	sys.Tree = state.Pred("BFS tree rooted at 0", func(s state.State) bool {
		for i := 1; i < sys.N; i++ {
			if sys.Dist(s, i) != sys.bfs[i] {
				return false
			}
			if sys.Dist(s, sys.Parent(s, i)) != sys.bfs[i]-1 {
				return false
			}
		}
		return true
	})

	// repair.i: node i adopts the neighbor with the smallest distance
	// estimate, when doing so strictly improves its own estimate toward
	// the consistent value neighborMin+1, or fixes a dangling parent.
	var actions []guarded.Action
	for i := 1; i < sys.N; i++ {
		i := i
		pv, dv := parentVar(i), distVar(i)
		best := func(s state.State) (idx, d int) {
			idx, d = 0, sys.N
			for k, w := range sys.Adj[i] {
				if wd := sys.Dist(s, w); wd < d {
					idx, d = k, wd
				}
			}
			return idx, d
		}
		guard := state.Pred(fmt.Sprintf("node %d inconsistent", i), func(s state.State) bool {
			_, nd := best(s)
			want := nd + 1
			return want < sys.N &&
				(sys.Dist(s, i) != want || sys.Dist(s, sys.Parent(s, i)) != nd)
		})
		actions = append(actions, guarded.Det(fmt.Sprintf("repair.%d", i), guard,
			func(s state.State) state.State {
				k, nd := best(s)
				return s.WithName(pv, k).WithName(dv, nd+1)
			}))
	}
	prog, err := guarded.NewProgram(fmt.Sprintf("tree-maintenance(n=%d)", sys.N), sys.Schema, actions...)
	if err != nil {
		return err
	}
	sys.Program = prog

	sys.Spec = spec.Problem{
		Name:   "SPEC_tree",
		Safety: spec.TrueSafety, // tree maintenance is a pure corrector: the contract is convergence
		Live: []spec.LeadsTo{{
			Name: "the tree is eventually re-established",
			P:    state.True,
			Q:    sys.Tree,
		}},
	}

	var faults []guarded.Action
	for i := 1; i < sys.N; i++ {
		i := i
		pv, dv := parentVar(i), distVar(i)
		deg := len(sys.Adj[i])
		faults = append(faults, guarded.Choice(fmt.Sprintf("corrupt.%d", i), state.True,
			func(s state.State) []state.State {
				var out []state.State
				for p := 0; p < deg; p++ {
					for d := 0; d < sys.N; d++ {
						out = append(out, s.WithName(pv, p).WithName(dv, d))
					}
				}
				return out
			}))
	}
	sys.Corruption = fault.NewClass("pointer-corruption", faults...)
	return nil
}

// AsCorrector returns the system viewed as the paper's corrector: the tree
// predicate corrects itself from any state.
func (sys *System) AsCorrector() core.Corrector {
	return core.Corrector{
		Name: sys.Program.Name(),
		C:    sys.Program,
		Z:    sys.Tree,
		X:    sys.Tree,
		U:    state.True,
	}
}
