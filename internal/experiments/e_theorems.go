package experiments

import (
	"fmt"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/memaccess"
	"detcorr/internal/smr"
	"detcorr/internal/state"
	"detcorr/internal/tmr"
	"detcorr/internal/tokenring"
)

// E6DetectorTheorems machine-checks the detector theorems (3.4 and 3.6) on
// the whole corpus of refinements in the repository.
func E6DetectorTheorems() (Table, error) {
	t := Table{
		ID:      "E6",
		Caption: "Theorems 3.4 and 3.6 — programs refining safety specs contain detectors",
		Header:  []string{"instance", "theorem", "result", "detectors"},
	}
	mem, err := memaccess.New(2)
	if err != nil {
		return t, err
	}
	tm, err := tmr.New(2)
	if err != nil {
		return t, err
	}
	sm, err := smr.New()
	if err != nil {
		return t, err
	}
	type inst struct {
		name string
		run  func() core.TheoremResult
	}
	for _, in := range []inst{
		{"memaccess pf (fault-free)", func() core.TheoremResult {
			return core.Theorem3_4(mem.Intolerant, mem.FailSafe, mem.Spec.FailSafeSpec(), mem.S)
		}},
		{"memaccess pf (page fault)", func() core.TheoremResult {
			return core.Theorem3_6(mem.Intolerant, mem.FailSafe, mem.Spec, mem.PageFaultWitness, mem.S, mem.S)
		}},
		{"TMR DR;IR (input corruption)", func() core.TheoremResult {
			return core.Theorem3_6(tm.Intolerant, tm.FailSafe, tm.Spec, tm.Faults, tm.S, tm.S)
		}},
		{"SMR vote (replica corruption)", func() core.TheoremResult {
			return core.Theorem3_6(sm.Intolerant, sm.FailSafe, sm.Spec, sm.Faults, sm.S, sm.S)
		}},
	} {
		res := in.run()
		detail := fmt.Sprint(len(res.Detectors))
		t.Rows = append(t.Rows, []string{in.name, res.Theorem, expect(res.OK(), true), detail})
	}
	return t, nil
}

// E7CorrectorTheorems machine-checks the corrector theorems (4.1 and 4.3)
// plus the token-ring corrector.
func E7CorrectorTheorems() (Table, error) {
	t := Table{
		ID:      "E7",
		Caption: "Theorems 4.1 and 4.3 — eventually-refining programs contain correctors",
		Header:  []string{"instance", "result", "detail"},
	}
	mem, err := memaccess.New(2)
	if err != nil {
		return t, err
	}
	r41 := core.Theorem4_1(mem.Intolerant, mem.Nonmasking, mem.Spec, mem.S, state.True)
	r43 := core.Theorem4_3(mem.Intolerant, mem.Nonmasking, mem.Spec, mem.PageFaultBase, mem.S, mem.S)
	t.Rows = append(t.Rows,
		[]string{"memaccess pn — Theorem 4.1", expect(r41.OK(), true), fmt.Sprintf("%d correctors", len(r41.Correctors))},
		[]string{"memaccess pn — Theorem 4.3", expect(r43.OK(), true), fmt.Sprintf("%d correctors", len(r43.Correctors))},
	)
	for _, tc := range []struct{ n, k int }{{3, 3}, {4, 4}} {
		ring, err := tokenring.New(tc.n, tc.k)
		if err != nil {
			return t, err
		}
		ok := ring.AsCorrector().Check() == nil
		nm := fault.CheckNonmasking(ring.Ring, ring.Corruption, ring.Spec, state.True, ring.Legitimate)
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("token ring n=%d K=%d is a corrector", tc.n, tc.k), expect(ok, true), "Z = X = legitimate"},
			[]string{fmt.Sprintf("token ring n=%d K=%d nonmasking tolerant", tc.n, tc.k), expect(nm.OK(), true),
				fmt.Sprintf("span %d states", nm.SpanSize)},
		)
	}
	return t, nil
}

// E8MaskingTheorems machine-checks Theorem 5.2 (fail-safe ∧ convergence ⇒
// masking) and Theorem 5.5 (masking programs contain both components).
func E8MaskingTheorems() (Table, error) {
	t := Table{
		ID:      "E8",
		Caption: "Theorems 5.2 and 5.5 — masking programs contain detectors and correctors",
		Header:  []string{"instance", "result", "detail"},
	}
	mem, err := memaccess.New(2)
	if err != nil {
		return t, err
	}
	tm, err := tmr.New(2)
	if err != nil {
		return t, err
	}
	r52 := core.Theorem5_2(tm.Masking, tm.Spec, state.And(tm.T, tm.OutCorrect), tm.T)
	r55 := core.Theorem5_5(mem.Nonmasking, mem.Masking, mem.Spec, mem.PageFaultWitness, mem.S, mem.S)
	// Negative control: the fail-safe pf lacks convergence, so Theorem 5.2's
	// hypotheses must fail for it.
	spanT := mem.U1
	r52neg := core.Theorem5_2(mem.FailSafe, mem.Spec, mem.S, spanT)
	t.Rows = append(t.Rows,
		[]string{"TMR — Theorem 5.2", expect(r52.OK(), true), fmt.Sprintf("%d hypotheses", len(r52.Hypotheses))},
		[]string{"memaccess pm — Theorem 5.5", expect(r55.OK(), true),
			fmt.Sprintf("%d detectors, %d correctors", len(r55.Detectors), len(r55.Correctors))},
		[]string{"memaccess pf — Theorem 5.2 (control)", expect(r52neg.OK(), false), "no convergence from U1"},
	)
	return t, nil
}
