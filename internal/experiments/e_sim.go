package experiments

import (
	"fmt"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/memaccess"
	"detcorr/internal/runtime"
	"detcorr/internal/smr"
	"detcorr/internal/state"
	"detcorr/internal/tmr"
	"detcorr/internal/tokenring"
)

// E12Simulation runs SIEFAST-style fault-injection campaigns over every
// case study. The measured statistics must match each program's tolerance
// class: fail-safe programs never violate safety but may deadlock,
// nonmasking programs recover within bounded steps, masking programs do
// both, and intolerant programs violate safety in some runs.
func E12Simulation() (Table, error) {
	t := Table{
		ID:      "E12",
		Caption: "SIEFAST substitute — fault-injection campaigns (200 seeded runs each)",
		Header:  []string{"program", "faults injected", "safety violations", "halted runs", "mean recovery (steps)"},
	}
	type campaign struct {
		name     string
		prog     *guarded.Program
		faults   fault.Class
		initial  func() state.State
		safety   runtime.Monitor
		goal     state.Predicate
		wantViol bool
		wantDead bool
	}
	mem, err := memaccess.New(2)
	if err != nil {
		return t, err
	}
	tm, err := tmr.New(2)
	if err != nil {
		return t, err
	}
	sm, err := smr.New()
	if err != nil {
		return t, err
	}
	ring, err := tokenring.New(3, 3)
	if err != nil {
		return t, err
	}
	memInitW := func() state.State {
		s, _ := state.FromMap(mem.WitnessSchema, map[string]int{"present": 1, "val": 1})
		return s
	}
	memInitB := func() state.State {
		s, _ := state.FromMap(mem.BaseSchema, map[string]int{"present": 1, "val": 1})
		return s
	}
	tmrInit := func() state.State {
		s, _ := state.FromMap(tm.Schema, map[string]int{"x": 1, "y": 1, "z": 1, "uncor": 1})
		return s
	}
	smrInit := func() state.State {
		s, _ := state.FromMap(sm.Schema, nil)
		return s
	}
	ringInit := func() state.State {
		s, _ := state.FromMap(ring.Schema, nil) // all counters 0: legitimate
		return s
	}
	campaigns := []campaign{
		{"memaccess p (intolerant)", mem.Intolerant, mem.PageFaultBase, memInitB,
			runtime.NewSafetyMonitor(mem.Spec.Safety), mem.DataCorrect, true, false},
		{"memaccess pf (fail-safe)", mem.FailSafe, mem.PageFaultWitness, memInitW,
			runtime.NewSafetyMonitor(mem.Spec.Safety), state.Predicate{}, false, true},
		// pn may transiently set data incorrectly — that is the nonmasking
		// contract — so its oracle is recovery, not safety.
		{"memaccess pn (nonmasking)", mem.Nonmasking, mem.PageFaultBase, memInitB,
			nil, mem.DataCorrect, false, false},
		{"memaccess pm (masking)", mem.Masking, mem.PageFaultWitness, memInitW,
			runtime.NewSafetyMonitor(mem.Spec.Safety), mem.DataCorrect, false, false},
		// TMR and SMR are terminating programs: every run halts once the
		// output is assigned, so halted runs are expected — the oracle is
		// that the output, once assigned, is correct.
		{"TMR (masking)", tm.Masking, tm.Faults, tmrInit,
			runtime.NewSafetyMonitor(tm.Spec.Safety), tm.OutCorrect, false, true},
		{"SMR (masking)", sm.Masking, sm.Faults, smrInit,
			runtime.NewSafetyMonitor(sm.Spec.Safety), sm.AllCorrect, false, true},
		{"token ring (nonmasking)", ring.Ring, ring.Corruption, ringInit,
			nil, ring.Legitimate, false, false},
	}
	for _, c := range campaigns {
		c := c
		camp := runtime.Campaign{
			Program: c.prog,
			Config:  runtime.Config{Seed: 23, MaxSteps: 400, Faults: c.faults, FaultBudget: 2},
			Initial: func(int) state.State { return c.initial() },
			Monitors: func(int) []runtime.Monitor {
				var ms []runtime.Monitor
				if c.safety != nil {
					ms = append(ms, c.safety)
				}
				if !c.goal.IsTrivial() {
					ms = append(ms, &runtime.ConvergenceMonitor{Goal: c.goal})
				}
				return ms
			},
			Runs: 200,
		}
		res, err := camp.Execute()
		if err != nil {
			return t, err
		}
		// Cross-check observed deadlocks against the model: every halted run
		// must correspond to a reachable state of p ‖ F with no enabled
		// program action. The probe over-approximates fault occurrences, so
		// only this direction is checkable.
		if res.Deadlocks > 0 {
			first := c.initial()
			initPred := state.Pred("init:"+c.name, func(st state.State) bool { return st.Equal(first) })
			if _, found, perr := camp.ProbeDeadlock(initPred); perr != nil {
				return t, fmt.Errorf("E12 %s: deadlock probe: %w", c.name, perr)
			} else if !found {
				return t, fmt.Errorf("E12 %s: %d simulated deadlocks but the model scan finds none", c.name, res.Deadlocks)
			}
		}
		violCount := 0
		for name, n := range res.ViolationCounts {
			if len(name) >= 7 && name[:7] == "safety:" {
				violCount += n
			}
		}
		viol := fmt.Sprint(violCount)
		if (violCount > 0) == c.wantViol {
			viol += " ✓"
		} else {
			viol += " ✗"
		}
		dead := fmt.Sprint(res.Deadlocks)
		if (res.Deadlocks > 0) == c.wantDead {
			dead += " ✓"
		} else {
			dead += " ✗"
		}
		rec := "—"
		if len(res.RecoverySteps) > 0 {
			rec = fmt.Sprintf("%.1f (max %d)", res.MeanRecovery(), res.MaxRecovery())
		}
		t.Rows = append(t.Rows, []string{c.name, fmt.Sprint(res.TotalFaults), viol, dead, rec})
	}
	return t, nil
}
