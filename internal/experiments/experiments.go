// Package experiments regenerates every artifact of the paper's
// "evaluation": the three memory-access figures (E1–E3), the TMR and
// Byzantine-agreement constructions of Section 6 (E4, E5), the theorem
// corpus (E6–E8), the token-ring application (E9), the synthesis method of
// reference [4] (E10), the state-machine miniature (E11), SIEFAST-style
// fault-injection campaigns (E12), the design-choice ablations (E13), and
// the remaining Section 1 applications — termination detection (E14),
// mutual exclusion (E15), multitolerance (E16), tree maintenance /
// distributed reset (E17) and leader election (E18). Each experiment
// returns a table; cmd/dcbench prints them and EXPERIMENTS.md records them
// against the paper's claims.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's output: a caption, a header row, and data rows.
type Table struct {
	ID      string
	Caption string
	Header  []string
	Rows    [][]string
}

// Markdown renders the table as GitHub-flavored markdown.
func (t Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Caption)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// Runner produces one experiment's table.
type Runner func() (Table, error)

// registry maps experiment ids to runners.
var registry = map[string]Runner{
	"E1":  E1FailSafeMemory,
	"E2":  E2NonmaskingMemory,
	"E3":  E3MaskingMemory,
	"E4":  E4TMR,
	"E5":  E5Byzantine,
	"E6":  E6DetectorTheorems,
	"E7":  E7CorrectorTheorems,
	"E8":  E8MaskingTheorems,
	"E9":  E9TokenRing,
	"E10": E10Synthesis,
	"E11": E11StateMachine,
	"E12": E12Simulation,
	"E13": E13Ablation,
	"E14": E14TerminationDetection,
	"E15": E15MutualExclusion,
	"E16": E16Multitolerance,
	"E17": E17TreeMaintenance,
	"E18": E18LeaderElection,
}

// IDs returns the experiment identifiers in order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// Run executes one experiment by id.
func Run(id string) (Table, error) {
	r, ok := registry[id]
	if !ok {
		return Table{}, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r()
}

// verdict renders a boolean tolerance verdict the way the tables expect.
func verdict(ok bool) string {
	if ok {
		return "holds"
	}
	return "fails"
}

// expect marks whether a verdict matches the paper's claim.
func expect(got bool, want bool) string {
	if got == want {
		return verdict(got) + " ✓"
	}
	return verdict(got) + " ✗ (expected " + verdict(want) + ")"
}
