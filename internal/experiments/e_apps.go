package experiments

import (
	"fmt"

	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/leader"
	"detcorr/internal/memaccess"
	"detcorr/internal/mutex"
	"detcorr/internal/reset"
	"detcorr/internal/spec"
	"detcorr/internal/state"
	"detcorr/internal/termdetect"
)

// E14TerminationDetection checks ring-based termination detection as a
// detector component (one of the applications the paper lists in
// Section 1): soundness and liveness of the announcement, masking tolerance
// to token displacement, and the classical negative results — color
// corruption breaks Safeness, and removing the blackening rule makes the
// algorithm unsound even without faults.
func E14TerminationDetection() (Table, error) {
	t := Table{
		ID:      "E14",
		Caption: "Application — termination detection as a detector ('done' detects 'all idle')",
		Header:  []string{"check", "result", "detail"},
	}
	for _, n := range []int{2, 3} {
		sys, err := termdetect.New(n)
		if err != nil {
			return t, err
		}
		d := sys.AsDetector()
		ok := d.Check() == nil
		mk := d.CheckFTolerant(sys.TokenLoss, fault.Masking) == nil
		fsBad := d.CheckFTolerant(sys.ColorCorruption, fault.FailSafe) == nil
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("n=%d: done detects all-idle", n), expect(ok, true), "Safeness = soundness, Progress = liveness"},
			[]string{fmt.Sprintf("n=%d: masking tolerant to token displacement", n), expect(mk, true), "dirty token forces a restart"},
			[]string{fmt.Sprintf("n=%d: fail-safe tolerant to color corruption", n), expect(fsBad, false), "false announcement found"},
		)
	}
	return t, nil
}

// E15MutualExclusion checks token-based mutual exclusion over the
// self-stabilizing ring (another Section 1 application): exclusion and
// circulation hold from the invariant, counter corruption is tolerated
// nonmasking (a transient double-entry is possible but the system
// converges), and fail-safe fails as expected.
func E15MutualExclusion() (Table, error) {
	t := Table{
		ID:      "E15",
		Caption: "Application — mutual exclusion over the self-stabilizing ring",
		Header:  []string{"check", "result", "detail"},
	}
	for _, tc := range []struct{ n, k int }{{3, 3}, {3, 4}} {
		sys, err := mutex.New(tc.n, tc.k)
		if err != nil {
			return t, err
		}
		refines := sys.Spec.CheckRefinesFrom(sys.Program, sys.Invariant) == nil
		nm := fault.CheckNonmasking(sys.Program, sys.Corruption, sys.Spec, sys.Invariant, sys.Invariant)
		fs := fault.CheckFailSafe(sys.Program, sys.Corruption, sys.Spec, sys.Invariant)
		stab := spec.CheckConverges(sys.Program, state.True, sys.Invariant) == nil
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("n=%d K=%d: refines SPEC_mutex from invariant", tc.n, tc.k), expect(refines, true), "exclusion + circulation"},
			[]string{fmt.Sprintf("n=%d K=%d: nonmasking under counter corruption", tc.n, tc.k), expect(nm.OK(), true), fmt.Sprintf("span %d states", nm.SpanSize)},
			[]string{fmt.Sprintf("n=%d K=%d: fail-safe under counter corruption", tc.n, tc.k), expect(fs.OK(), false), "transient double entry"},
			[]string{fmt.Sprintf("n=%d K=%d: self-stabilizing (converges from true)", tc.n, tc.k), expect(stab, true), "layered corrector"},
		)
	}
	return t, nil
}

// E16Multitolerance checks the multitolerance composition of the paper's
// reference [4] on the masking memory-access program: masking tolerance to
// page faults, nonmasking tolerance to data scribbles, and — for faults of
// both classes in one computation — the meet of the two guarantees
// (nonmasking).
func E16Multitolerance() (Table, error) {
	t := Table{
		ID:      "E16",
		Caption: "Reference [4] — multitolerance: per-class kinds and their meet",
		Header:  []string{"check", "result", "detail"},
	}
	sys, err := memaccessForMulti()
	if err != nil {
		return t, err
	}
	m, err := fault.CheckMulti(sys.prog, sys.prob, sys.inv,
		fault.Requirement{Faults: sys.pageFault, Kind: fault.Masking},
		fault.Requirement{Faults: sys.scribble, Kind: fault.Nonmasking},
	)
	if err != nil {
		return t, err
	}
	for _, r := range m.Individual {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s to %s", r.Kind, r.Faults), expect(r.OK(), true),
			fmt.Sprintf("span %d states", r.SpanSize),
		})
	}
	for _, r := range m.Combined {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("combined: %s to %s", r.Kind, r.Faults), expect(r.OK(), true),
			"meet(masking, nonmasking) = nonmasking",
		})
	}
	// Overclaiming masking for the scribble class must be refuted.
	over, err := fault.CheckMulti(sys.prog, sys.prob, sys.inv,
		fault.Requirement{Faults: sys.scribble, Kind: fault.Masking},
	)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{
		"overclaim: masking to data-scribble", expect(over.OK(), false), "the fault step itself violates safety",
	})
	return t, nil
}

// multiSystem is the masking memory-access program with a second fault
// class that scribbles the data register.
type multiSystem struct {
	prog      *guarded.Program
	prob      spec.Problem
	inv       state.Predicate
	pageFault fault.Class
	scribble  fault.Class
}

func memaccessForMulti() (*multiSystem, error) {
	sys, err := memaccess.New(2)
	if err != nil {
		return nil, err
	}
	// The scribble flips data to the wrong value; recovery: the gated read
	// rewrites it once the detector has pinned the page.
	scribble := fault.NewClass("data-scribble", guarded.Det("scribble",
		state.True,
		func(s state.State) state.State {
			wrong := (1 - s.GetName("val")) + 1
			return s.WithName("data", wrong)
		}))
	return &multiSystem{
		prog:      sys.Masking,
		prob:      sys.Spec,
		inv:       sys.S,
		pageFault: sys.PageFaultWitness,
		scribble:  scribble,
	}, nil
}

// E17TreeMaintenance checks spanning-tree maintenance (the substrate of
// distributed reset, two more Section 1 applications) as a corrector: the
// BFS-tree predicate corrects itself from any state, the repair actions are
// silent in legitimate states, and pointer corruption is tolerated
// nonmasking.
func E17TreeMaintenance() (Table, error) {
	t := Table{
		ID:      "E17",
		Caption: "Application — tree maintenance (distributed reset substrate) as a corrector",
		Header:  []string{"topology", "corrector", "nonmasking under corruption", "states"},
	}
	type topo struct {
		name string
		sys  func() (*reset.System, error)
	}
	for _, tc := range []topo{
		{"line n=3", func() (*reset.System, error) { return reset.NewLine(3) }},
		{"line n=4", func() (*reset.System, error) { return reset.NewLine(4) }},
		{"ring n=4", func() (*reset.System, error) {
			return reset.New([][]int{{1, 3}, {0, 2}, {1, 3}, {2, 0}})
		}},
	} {
		sys, err := tc.sys()
		if err != nil {
			return t, err
		}
		ok := sys.AsCorrector().Check() == nil
		nm := fault.CheckNonmasking(sys.Program, sys.Corruption, sys.Spec, state.True, sys.Tree)
		n, _ := sys.Schema.NumStates()
		t.Rows = append(t.Rows, []string{
			tc.name, expect(ok, true), expect(nm.OK(), true), fmt.Sprint(n),
		})
	}
	return t, nil
}

// E18LeaderElection checks self-stabilizing leader election (another
// Section 1 application) as a corrector: the elected predicate corrects
// itself from any state, belief corruption is tolerated nonmasking (a
// transient wrong leader is possible), and dropping the self-injection rule
// breaks convergence — found by the checker.
func E18LeaderElection() (Table, error) {
	t := Table{
		ID:      "E18",
		Caption: "Application — self-stabilizing leader election as a corrector",
		Header:  []string{"ring", "corrector", "nonmasking under corruption", "fail-safe (expected to fail)", "states"},
	}
	for _, n := range []int{3, 4} {
		sys, err := leader.New(n)
		if err != nil {
			return t, err
		}
		ok := sys.AsCorrector().Check() == nil
		nm := fault.CheckNonmasking(sys.Program, sys.Corruption, sys.Spec, state.True, sys.Elected)
		fs := fault.CheckFailSafe(sys.Program, sys.Corruption, sys.Spec, sys.Elected)
		states, _ := sys.Schema.NumStates()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("n=%d", n), expect(ok, true), expect(nm.OK(), true), expect(fs.OK(), false), fmt.Sprint(states),
		})
	}
	return t, nil
}
