package experiments

import (
	"fmt"
	"time"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/memaccess"
	"detcorr/internal/smr"
	"detcorr/internal/state"
)

func memRestoreTemplate() guarded.Action {
	return guarded.Det("recover-page",
		state.Pred("¬present", func(s state.State) bool { return s.GetName("present") == 0 }),
		func(s state.State) state.State { return s.WithName("present", 1) },
	)
}

// E10Synthesis reproduces the constructive method of the paper's reference
// [4]: starting from the intolerant memory-access program, the fail-safe,
// nonmasking and masking transformations are synthesized and land in
// exactly the same tolerance classes as the paper's hand-written pf, pn and
// pm — with the synthesis cost as a function of the state-space size.
func E10Synthesis() (Table, error) {
	t := Table{
		ID:      "E10",
		Caption: "Reference [4] — synthesized vs hand-written tolerance",
		Header:  []string{"V (states)", "transform", "fail-safe", "nonmasking", "masking", "synthesis time"},
	}
	for _, v := range []int{2, 3, 4, 6} {
		sys, err := memaccess.New(v)
		if err != nil {
			return t, err
		}
		states, _ := sys.BaseSchema.NumStates()
		tpl := []guarded.Action{memRestoreTemplate()}

		start := time.Now()
		synthFS := core.AddFailSafe(sys.Intolerant, sys.Spec.FailSafeSpec())
		fsTime := time.Since(start)

		start = time.Now()
		synthNM, err := core.AddNonmasking(sys.Intolerant, sys.PageFaultBase, sys.S, tpl)
		if err != nil {
			return t, err
		}
		nmTime := time.Since(start)

		start = time.Now()
		synthM, err := core.AddMasking(sys.Intolerant, sys.PageFaultBase, sys.Spec, sys.S, tpl)
		if err != nil {
			return t, err
		}
		mTime := time.Since(start)

		for _, row := range []struct {
			name string
			prog *guarded.Program
			dur  time.Duration
			want [3]bool // fail-safe, nonmasking, masking
		}{
			{"AddFailSafe", synthFS, fsTime, [3]bool{true, false, false}},
			{"AddNonmasking", synthNM, nmTime, [3]bool{false, true, false}},
			{"AddMasking", synthM, mTime, [3]bool{true, true, true}},
		} {
			fs := fault.CheckFailSafe(row.prog, sys.PageFaultBase, sys.Spec, sys.S).OK()
			nm := fault.CheckNonmasking(row.prog, sys.PageFaultBase, sys.Spec, sys.S, sys.S).OK()
			mk := fault.CheckMasking(row.prog, sys.PageFaultBase, sys.Spec, sys.S).OK()
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d (%d)", v, states),
				row.name,
				expect(fs, row.want[0]),
				expect(nm, row.want[1]),
				expect(mk, row.want[2]),
				row.dur.Round(time.Microsecond).String(),
			})
		}
	}
	return t, nil
}

// E13Ablation measures two design choices the theory leaves open:
//
//  1. Detector granularity — the per-action weakest detection predicates of
//     Theorem 3.3 versus one global consistency detector that gates *every*
//     action of the SMR system on the read's witness. The coarse detector
//     cannot distinguish legitimate transient divergence (one replica has
//     applied, the others have not) from corruption: it deadlocks the
//     fault-free protocol mid-run and is not even fail-safe tolerant, while
//     the per-action detectors block exactly the unsafe read.
//  2. Corrector restriction — the BFS-ranked corrector (convergence by
//     construction) versus composing raw recovery templates. With a
//     bidirectional "toggle the page" template, the raw composition breaks
//     closure of the invariant and never stabilizes, while the ranked
//     corrector restricts the template to rank-decreasing moves and
//     converges.
func E13Ablation() (Table, error) {
	t := Table{
		ID:      "E13",
		Caption: "Ablation — detector granularity and corrector ranking",
		Header:  []string{"variant", "tolerance", "deadlocked span states", "span edges"},
	}
	sm, err := smr.New()
	if err != nil {
		return t, err
	}
	sspec := sm.Spec.FailSafeSpec()

	perAction := core.AddFailSafe(sm.Intolerant, sspec)
	// The coarse alternative gates *every* action — including the harmless
	// apply actions — on the read's consistency witness "v.1 agrees with a
	// peer", instead of each action's own weakest detection predicate.
	global := state.Pred("v.1 has a peer", func(s state.State) bool {
		v1 := s.GetName("v.1")
		return v1 == s.GetName("v.2") || v1 == s.GetName("v.3")
	})
	globalProg := guarded.Restrict(global, sm.Intolerant).Rename("global-detector")

	for _, row := range []struct {
		name string
		prog *guarded.Program
		want bool
	}{
		{"SMR, per-action detectors (Thm 3.3)", perAction, true},
		{"SMR, single global detector", globalProg, false},
	} {
		rep := fault.CheckFailSafe(row.prog, sm.Faults, sm.Spec, sm.S)
		dead, edges, err := spanDeadlocks(row.prog, sm.Faults, sm.S)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{row.name, "fail-safe " + expect(rep.OK(), row.want), fmt.Sprint(dead), fmt.Sprint(edges)})
	}

	// Corrector ranking on memaccess with a toggle template that can move
	// both toward and away from the invariant.
	sys, err := memaccess.New(2)
	if err != nil {
		return t, err
	}
	toggle := guarded.Det("toggle-page", state.True, func(s state.State) state.State {
		return s.WithName("present", 1-s.GetName("present"))
	})
	tpl := []guarded.Action{toggle}
	ranked, rankedErr := core.AddNonmasking(sys.Intolerant, sys.PageFaultBase, sys.S, tpl)
	raw, err := guarded.Parallel("raw-corrector", sys.Intolerant,
		guarded.MustProgram("recovery", sys.BaseSchema, tpl...))
	if err != nil {
		return t, err
	}
	if rankedErr != nil {
		return t, rankedErr
	}
	for _, row := range []struct {
		name string
		prog *guarded.Program
		want bool
	}{
		{"memaccess, BFS-ranked toggle corrector", ranked, true},
		{"memaccess, unranked toggle template", raw, false},
	} {
		rep := fault.CheckNonmasking(row.prog, sys.PageFaultBase, sys.Spec, sys.S, sys.S)
		dead, edges, err := spanDeadlocks(row.prog, sys.PageFaultBase, sys.S)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, []string{row.name, "nonmasking " + expect(rep.OK(), row.want), fmt.Sprint(dead), fmt.Sprint(edges)})
	}
	return t, nil
}

func spanDeadlocks(p *guarded.Program, f fault.Class, s state.Predicate) (dead, edges int, err error) {
	span, err := fault.ComputeSpan(p, f, s)
	if err != nil {
		return 0, 0, err
	}
	span.Reachable.ForEach(func(id int) bool {
		if span.Graph.Deadlocked(id) {
			dead++
		}
		return true
	})
	return dead, span.Graph.NumEdges(), nil
}
