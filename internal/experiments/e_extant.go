package experiments

import (
	"fmt"

	"detcorr/internal/byzagree"
	"detcorr/internal/core"
	"detcorr/internal/dist"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/smr"
	"detcorr/internal/tmr"
)

// E4TMR reproduces Section 6.1: IR is intolerant, DR;IR is fail-safe
// tolerant to one input corruption (and deadlocks when x is corrupted), and
// DR;IR ‖ CR — the TMR program — is masking tolerant.
func E4TMR() (Table, error) {
	t := Table{
		ID:      "E4",
		Caption: "Section 6.1 — triple modular redundancy by detector + corrector",
		Header:  []string{"program", "fail-safe", "masking", "span states"},
	}
	for _, v := range []int{2, 3} {
		sys, err := tmr.New(v)
		if err != nil {
			return t, err
		}
		for _, row := range []struct {
			name   string
			prog   *guarded.Program
			wantFS bool
			wantM  bool
		}{
			{"IR (intolerant)", sys.Intolerant, false, false},
			{"DR;IR (detector added)", sys.FailSafe, true, false},
			{"DR;IR ‖ CR (TMR)", sys.Masking, true, true},
		} {
			fs := fault.CheckFailSafe(row.prog, sys.Faults, sys.Spec, sys.S)
			mk := fault.CheckMasking(row.prog, sys.Faults, sys.Spec, sys.S)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("V=%d: %s", v, row.name),
				expect(fs.OK(), row.wantFS),
				expect(mk.OK(), row.wantM),
				fmt.Sprint(fs.SpanSize),
			})
		}
	}
	return t, nil
}

// E5Byzantine reproduces Section 6.2: for n = 4, f = 1 the gated program is
// fail-safe Byzantine-tolerant, adding CB makes it masking, and the model-
// checked components match the paper's DB and CB. The general n ≥ 3f+1 case
// runs as an OM(f) simulation (the paper defers f > 1 to its reference
// [11]).
func E5Byzantine() (Table, error) {
	t := Table{
		ID:      "E5",
		Caption: "Section 6.2 — Byzantine agreement by detector + corrector",
		Header:  []string{"check", "result", "detail"},
	}
	sys, err := byzagree.New()
	if err != nil {
		return t, err
	}
	intol := fault.CheckFailSafe(sys.Intolerant, sys.Faults, sys.Spec, sys.S)
	fs := fault.CheckFailSafe(sys.FailSafe, sys.Faults, sys.Spec, sys.ST)
	fsm := fault.CheckMasking(sys.FailSafe, sys.Faults, sys.Spec, sys.ST)
	mk := fault.CheckMasking(sys.Masking, sys.Faults, sys.Spec, sys.ST)
	t.Rows = append(t.Rows,
		[]string{"IB fail-safe tolerant", expect(intol.OK(), false), "Byzantine general splits outputs"},
		[]string{"IB+DB fail-safe tolerant", expect(fs.OK(), true), fmt.Sprintf("span %d states", fs.SpanSize)},
		[]string{"IB+DB masking tolerant", expect(fsm.OK(), false), "a process can block"},
		[]string{"IB+DB+CB masking tolerant", expect(mk.OK(), true), fmt.Sprintf("span %d states", mk.SpanSize)},
	)
	for j := 1; j <= byzagree.NumNonGenerals; j++ {
		d := core.Detector{D: sys.Masking, Z: byzagree.WitnessOf(j), X: byzagree.DetectionOf(j), U: sys.ST}
		c := core.Corrector{C: sys.Masking, Z: byzagree.WitnessOf(j), X: byzagree.DetectionOf(j), U: sys.ST}
		dok := d.CheckFTolerant(sys.Faults, fault.Masking) == nil
		cok := c.CheckFTolerant(sys.FaultsExcluding(j), fault.Nonmasking) == nil
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("DB.%d masking tolerant detector", j), expect(dok, true), "W.j detects d.j=corrdecn"},
			[]string{fmt.Sprintf("CB.%d nonmasking tolerant corrector", j), expect(cok, true), "W.j corrects d.j=corrdecn"},
		)
	}
	// General case over the message-passing simulation.
	for _, tc := range []struct {
		n, f int
		byz  map[int]bool
	}{
		{4, 1, map[int]bool{0: true}},
		{7, 2, map[int]bool{0: true, 3: true}},
	} {
		agree := 0
		var sent int
		const seeds = 50
		for seed := int64(0); seed < seeds; seed++ {
			res, err := dist.RunOM(tc.n, tc.f, 1, tc.byz, dist.Options{Seed: seed})
			if err != nil {
				return t, err
			}
			if _, ok := res.HonestAgree(tc.byz); ok {
				agree++
			}
			sent += res.Stats.Sent
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("OM(%d) n=%d, Byzantine %v: agreement", tc.f, tc.n, keys(tc.byz)),
			expect(agree == seeds, true),
			fmt.Sprintf("%d/%d seeds, avg %d msgs", agree, seeds, sent/seeds),
		})
	}
	// The 3f+1 bound is tight: n = 3 with one Byzantine lieutenant fails.
	violated := false
	for seed := int64(0); seed < 200 && !violated; seed++ {
		res, err := dist.RunOM(3, 1, 1, map[int]bool{2: true}, dist.Options{Seed: seed})
		if err != nil {
			return t, err
		}
		if d, ok := res.HonestAgree(map[int]bool{2: true}); !ok || d != 1 {
			violated = true
		}
	}
	t.Rows = append(t.Rows, []string{"OM(1) n=3 violates interactive consistency", expect(violated, true), "3f+1 bound is tight"})
	return t, nil
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// E11StateMachine reproduces the Section 6 claim for Schneider's
// state-machine approach: the replicated register contains a vote detector
// and a state-transfer corrector, and is masking tolerant to one replica
// corruption.
func E11StateMachine() (Table, error) {
	t := Table{
		ID:      "E11",
		Caption: "Section 6 — state-machine replication contains detectors and correctors",
		Header:  []string{"check", "result", "detail"},
	}
	sys, err := smr.New()
	if err != nil {
		return t, err
	}
	intol := fault.CheckFailSafe(sys.Intolerant, sys.Faults, sys.Spec, sys.S)
	fs := fault.CheckFailSafe(sys.FailSafe, sys.Faults, sys.Spec, sys.S)
	mk := fault.CheckMasking(sys.Masking, sys.Faults, sys.Spec, sys.S)
	thm := core.Theorem3_6(sys.Intolerant, sys.FailSafe, sys.Spec, sys.Faults, sys.S, sys.S)
	t.Rows = append(t.Rows,
		[]string{"single-replica read fail-safe", expect(intol.OK(), false), "reads corrupted replica"},
		[]string{"vote-gated read fail-safe", expect(fs.OK(), true), fmt.Sprintf("span %d states", fs.SpanSize)},
		[]string{"votes + state transfer masking", expect(mk.OK(), true), fmt.Sprintf("span %d states", mk.SpanSize)},
		[]string{"Theorem 3.6 on the vote detector", expect(thm.OK(), true), fmt.Sprintf("%d detectors", len(thm.Detectors))},
	)
	return t, nil
}
