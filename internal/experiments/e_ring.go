package experiments

import (
	"fmt"

	"detcorr/internal/explore"
	"detcorr/internal/state"
	"detcorr/internal/tokenring"
)

// E9TokenRing reproduces the Section 7 application: Dijkstra's K-state
// token ring checked as a corrector, with convergence cost as a function of
// ring size and counter range, and the stabilization bound (K ≥ n-1 —
// Dijkstra proved K ≥ n sufficient; the checker finds the tight edge).
func E9TokenRing() (Table, error) {
	t := Table{
		ID:      "E9",
		Caption: "Section 7 — Dijkstra's token ring as a corrector",
		Header:  []string{"ring", "corrector", "states", "worst-case convergence (steps)", "legitimate states"},
	}
	for _, tc := range []struct{ n, k int }{{2, 2}, {3, 3}, {3, 4}, {4, 4}, {4, 5}, {5, 5}} {
		sys, err := tokenring.New(tc.n, tc.k)
		if err != nil {
			return t, err
		}
		ok := sys.AsCorrector().Check() == nil
		hist, err := sys.ConvergenceSteps()
		if err != nil {
			return t, err
		}
		total := 0
		for _, c := range hist {
			total += c
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("n=%d K=%d", tc.n, tc.k),
			expect(ok, true),
			fmt.Sprint(total),
			fmt.Sprint(len(hist) - 1),
			fmt.Sprint(hist[0]),
		})
	}
	// Stabilization bound: K = n-2 admits a non-converging cycle, K = n-1
	// does not (checked on the raw graph: any illegitimate cycle at all,
	// i.e. non-convergence under the unfair demon).
	for _, tc := range []struct {
		n, k int
		want bool // has non-converging cycle
	}{{4, 2, true}, {4, 3, false}, {5, 3, true}, {5, 4, false}} {
		has, err := ringHasIllegitimateCycle(tc.n, tc.k)
		if err != nil {
			return t, err
		}
		got := "no non-converging cycle"
		if has {
			got = "non-converging cycle exists"
		}
		mark := " ✓"
		if has != tc.want {
			mark = " ✗"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("n=%d K=%d (bound probe)", tc.n, tc.k),
			got + mark,
			"—", "—", "—",
		})
	}
	return t, nil
}

func ringHasIllegitimateCycle(n, k int) (bool, error) {
	sys, err := tokenring.NewUnchecked(n, k)
	if err != nil {
		return false, err
	}
	g, err := explore.Build(sys.Ring, state.True, explore.Options{})
	if err != nil {
		return false, err
	}
	ill := g.SetOf(state.Not(sys.Legitimate))
	for _, comp := range g.SCCs(ill) {
		member := explore.NewBitset(g.NumNodes())
		for _, v := range comp {
			member.Add(v)
		}
		for _, v := range comp {
			for _, e := range g.Out(v) {
				if member.Has(e.To) {
					return true, nil
				}
			}
		}
	}
	return false, nil
}
