package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsMatchPaperClaims runs every experiment end-to-end and
// asserts that no table cell reports a verdict diverging from the paper's
// claim (every divergence is rendered with "✗").
func TestAllExperimentsMatchPaperClaims(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			table, err := Run(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if len(table.Rows) == 0 {
				t.Fatalf("%s produced no rows", id)
			}
			for _, row := range table.Rows {
				for _, cell := range row {
					if strings.Contains(cell, "✗") {
						t.Errorf("%s: verdict diverges from the paper: %v", id, row)
					}
				}
			}
			md := table.Markdown()
			if !strings.Contains(md, "| "+table.Header[0]) {
				t.Errorf("%s: markdown rendering missing header", id)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("E99"); err == nil {
		t.Error("unknown experiment id must fail")
	}
}

func TestIDsOrdered(t *testing.T) {
	ids := IDs()
	if len(ids) != 18 {
		t.Fatalf("expected 18 experiments, got %d", len(ids))
	}
	if ids[0] != "E1" || ids[len(ids)-1] != "E18" {
		t.Errorf("ids out of order: %v", ids)
	}
}
