package experiments

import (
	"fmt"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/memaccess"
	"detcorr/internal/runtime"
	"detcorr/internal/state"
)

// E1FailSafeMemory reproduces Figure 1 (Section 3.3): pf is fail-safe
// page-fault-tolerant — and only fail-safe — and contains a fail-safe
// tolerant detector for the read action (Theorem 3.6 instance).
func E1FailSafeMemory() (Table, error) {
	t := Table{
		ID:      "E1",
		Caption: "Figure 1 — fail-safe memory access pf",
		Header:  []string{"check", "result", "span states"},
	}
	for _, v := range []int{2, 3, 4} {
		sys, err := memaccess.New(v)
		if err != nil {
			return t, err
		}
		fs := fault.CheckFailSafe(sys.FailSafe, sys.PageFaultWitness, sys.Spec, sys.S)
		mk := fault.CheckMasking(sys.FailSafe, sys.PageFaultWitness, sys.Spec, sys.S)
		thm := core.Theorem3_6(sys.Intolerant, sys.FailSafe, sys.Spec, sys.PageFaultWitness, sys.S, sys.S)
		t.Rows = append(t.Rows,
			[]string{fmt.Sprintf("V=%d: pf fail-safe tolerant", v), expect(fs.OK(), true), fmt.Sprint(fs.SpanSize)},
			[]string{fmt.Sprintf("V=%d: pf masking tolerant", v), expect(mk.OK(), false), fmt.Sprint(mk.SpanSize)},
			[]string{fmt.Sprintf("V=%d: Theorem 3.6 (detector exists)", v), expect(thm.OK(), true), "—"},
		)
	}
	return t, nil
}

// E2NonmaskingMemory reproduces Figure 2 (Section 4.3): pn is nonmasking —
// and only nonmasking — page-fault-tolerant, and contains a nonmasking
// corrector (Theorem 4.3 instance); plus the measured recovery cost.
func E2NonmaskingMemory() (Table, error) {
	t := Table{
		ID:      "E2",
		Caption: "Figure 2 — nonmasking memory access pn",
		Header:  []string{"check", "result", "detail"},
	}
	sys, err := memaccess.New(2)
	if err != nil {
		return t, err
	}
	nm := fault.CheckNonmasking(sys.Nonmasking, sys.PageFaultBase, sys.Spec, sys.S, sys.S)
	fs := fault.CheckFailSafe(sys.Nonmasking, sys.PageFaultBase, sys.Spec, sys.S)
	thm := core.Theorem4_3(sys.Intolerant, sys.Nonmasking, sys.Spec, sys.PageFaultBase, sys.S, sys.S)
	camp, err := recoveryCampaign(sys)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"pn nonmasking tolerant", expect(nm.OK(), true), fmt.Sprintf("span %d states", nm.SpanSize)},
		[]string{"pn fail-safe tolerant", expect(fs.OK(), false), "arbitrary read after fault"},
		[]string{"Theorem 4.3 (corrector exists)", expect(thm.OK(), true), fmt.Sprintf("%d hypotheses", len(thm.Hypotheses))},
		[]string{"simulated recoveries", fmt.Sprint(len(camp.RecoverySteps)), fmt.Sprintf("mean %.1f / max %d steps", camp.MeanRecovery(), camp.MaxRecovery())},
	)
	return t, nil
}

func recoveryCampaign(sys *memaccess.System) (runtime.CampaignResult, error) {
	return runtime.Campaign{
		Program: sys.Nonmasking,
		Config:  runtime.Config{Seed: 17, MaxSteps: 300, Faults: sys.PageFaultBase, FaultBudget: 3},
		Initial: func(int) state.State {
			s, _ := state.FromMap(sys.BaseSchema, map[string]int{"present": 1, "val": 1})
			return s
		},
		Monitors: func(int) []runtime.Monitor {
			return []runtime.Monitor{&runtime.ConvergenceMonitor{Goal: sys.DataCorrect}}
		},
		Runs: 200,
	}.Execute()
}

// E3MaskingMemory reproduces Figure 3 (Section 5.1): pm is masking
// page-fault-tolerant and contains both a masking tolerant detector and a
// masking tolerant corrector (Theorem 5.5 instance).
func E3MaskingMemory() (Table, error) {
	t := Table{
		ID:      "E3",
		Caption: "Figure 3 — masking memory access pm",
		Header:  []string{"check", "result", "detail"},
	}
	sys, err := memaccess.New(2)
	if err != nil {
		return t, err
	}
	mk := fault.CheckMasking(sys.Masking, sys.PageFaultWitness, sys.Spec, sys.S)
	thm := core.Theorem5_5(sys.Nonmasking, sys.Masking, sys.Spec, sys.PageFaultWitness, sys.S, sys.S)
	intol := fault.CheckFailSafe(sys.Intolerant, sys.PageFaultBase, sys.Spec, sys.S)
	t.Rows = append(t.Rows,
		[]string{"pm masking tolerant", expect(mk.OK(), true), fmt.Sprintf("span %d states", mk.SpanSize)},
		[]string{"Theorem 5.5 (detector + corrector)", expect(thm.OK(), true),
			fmt.Sprintf("%d detectors, %d correctors", len(thm.Detectors), len(thm.Correctors))},
		[]string{"intolerant p fail-safe tolerant", expect(intol.OK(), false), "baseline"},
	)
	return t, nil
}
