GO ?= go
GCL_FILES := $(wildcard cmd/dctl/testdata/*.gcl)

.PHONY: check build vet test race lint fuzz bench clean

# The full local gate: everything CI would run.
check: build vet test race lint fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# dclint over every shipped GCL program; fails on error-severity findings.
lint:
	$(GO) run ./cmd/dctl lint $(GCL_FILES)

# Short fuzz smoke over the GCL front end ('go test -fuzz' accepts only one
# target per invocation, hence two runs).
fuzz:
	$(GO) test ./internal/gcl -run='^$$' -fuzz=FuzzParse -fuzztime=10s
	$(GO) test ./internal/gcl -run='^$$' -fuzz=FuzzCompile -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	rm -f dctl dcbench
