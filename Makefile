GO ?= go
GCL_FILES := $(wildcard cmd/dctl/testdata/*.gcl)

.PHONY: check build vet test race lint bench clean

# The full local gate: everything CI would run.
check: build vet test race lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# dclint over every shipped GCL program; fails on error-severity findings.
lint:
	$(GO) run ./cmd/dctl lint $(GCL_FILES)

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	rm -f dctl dcbench
