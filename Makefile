GO ?= go
GCL_FILES := $(wildcard cmd/dctl/testdata/*.gcl)
# The internal/lint fixtures that must lint clean (exit 0): everything except
# the three whose *processing* is expected to fail (overflow, parseerror,
# resolve exit 1 by design; their .golden files pin the findings).
LINT_CLEAN := $(filter-out \
	internal/lint/testdata/overflow.gcl \
	internal/lint/testdata/parseerror.gcl \
	internal/lint/testdata/resolve.gcl, \
	$(wildcard internal/lint/testdata/*.gcl))

.PHONY: check build fmt vet dcvet dccodes test race serve-test watch-test lint prove flow fuzz bench bench-diff bench-spill bench-slice bench-incr profile clean

# The full local gate: everything CI would run.
check: build fmt vet dcvet test race serve-test watch-test lint prove flow fuzz

build:
	$(GO) build ./...

# Formatting gate: fails listing the offending files; fix with gofmt -w.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -shuffle=on ./...

# The dcserved proof-of-correctness suites under the race detector: the
# synthetic client swarm (dedup + ground-truth verdicts under load), the
# tenant-quota hammer, the drain/admission end-to-end tests, and the
# dctl-verdict/dcserved byte-parity difftest. `race` already covers these
# packages once; this target reruns them shuffled at count=2 so the swarm
# schedules differ between runs.
serve-test:
	$(GO) test -race -shuffle=on -count=2 ./internal/serve/... ./cmd/dcserved ./cmd/dctl

# The incremental re-verification suites under the race detector: the
# edit-scoped graph-repair difftest (every example system, every scripted
# edit, byte-identical to a from-scratch build), the revision hammer
# (program edited mid-swarm, every served verdict checked against ground
# truth), and the dctl watch edit loop.
watch-test:
	$(GO) test -race -run 'TestRepair|TestMigrate|TestRevise|TestWatch|TestPoll|TestAffectedBySoundness|TestPlanRepair' \
		./internal/explore/... ./internal/flow ./internal/serve ./internal/watch ./cmd/dctl

# The repo's own analyzer suite (internal/analyzers) over the whole module:
# kernel zero-alloc contract, atomics discipline, cache-key completeness,
# CSR write-once rules, exit-code/DC-code doc agreement, .gitignore shadowing.
dcvet:
	$(GO) run ./cmd/dcvet

# Back-compat alias for the DC-code table check, now one dcvet analyzer.
dccodes:
	$(GO) run ./cmd/dccodes

# dclint over every shipped GCL program and every internal/lint fixture that
# is expected to pass; fails on error-severity findings.
lint:
	$(GO) run ./cmd/dctl lint $(GCL_FILES) $(LINT_CLEAN)

# dcprove over the shipped examples: the paper's closure, safeness, and
# convergence claims must all discharge without exploration (exit 0).
prove:
	$(GO) run ./cmd/dctl prove cmd/dctl/testdata/ring3.gcl -invariant Legit -span auto
	$(GO) run ./cmd/dctl prove cmd/dctl/testdata/memaccess.gcl -invariant S -span U1 \
		-z Z1p -x X1 -from U1 -converge X1

# The slicing gate: dctl flow over the shipped examples (the dependence
# analysis and every per-predicate cone must build without error), then the
# slice difftest under the race detector — every declared predicate of every
# example system checked full-width and through the cone-of-influence
# pre-pass, asserting byte-identical verdicts and witnesses.
flow:
	$(GO) run ./cmd/dctl flow cmd/dctl/testdata/ring3.gcl > /dev/null
	$(GO) run ./cmd/dctl flow cmd/dctl/testdata/memaccess.gcl -json > /dev/null
	$(GO) test -race -run 'TestSliceDifftest|TestValidateWrites' ./internal/flow

# Short fuzz smoke over the GCL front end ('go test -fuzz' accepts only one
# target per invocation, hence two runs).
fuzz:
	$(GO) test ./internal/gcl -run='^$$' -fuzz=FuzzParse -fuzztime=10s
	$(GO) test ./internal/gcl -run='^$$' -fuzz=FuzzCompile -fuzztime=10s

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-diff runs the exploration-heavy benchmarks with allocation counting
# and records the results: graph builds and kernel step microbenchmarks in
# BENCH_kernel.json, graph-cache reuse and streaming-scan benchmarks in
# BENCH_reuse.json, and the dcserved swarm throughput/latency record
# (req/s, p50/p99) in BENCH_served.json. Perf changes land with before/after
# evidence (compare
# with `go run golang.org/x/perf/cmd/benchstat` if available, or by eye —
# the files are plain `go test -json` output). The reuse benchmarks include
# the deliberately slow UncachedCheck baseline, so they run at -benchtime=3x.
bench-diff:
	$(GO) test -json -run='^$$' -bench='Build|Kernel' -benchmem . > BENCH_kernel.json
	@grep -o '"Output":"[^"]*"' BENCH_kernel.json | sed -e 's/^"Output":"//' -e 's/"$$//' | tr -d '\n' | sed 's/\\n/\n/g;s/\\t/\t/g' | grep 'ns/op' || true
	$(GO) test -json -run='^$$' -bench='CachedReuse|UncachedCheck|Scan' -benchtime=3x -benchmem . > BENCH_reuse.json
	@grep -o '"Output":"[^"]*"' BENCH_reuse.json | sed -e 's/^"Output":"//' -e 's/"$$//' | tr -d '\n' | sed 's/\\n/\n/g;s/\\t/\t/g' | grep 'ns/op' || true
	$(GO) test -json -run='^$$' -bench='ServedSwarm' ./internal/serve > BENCH_served.json
	@grep -o '"Output":"[^"]*"' BENCH_served.json | sed -e 's/^"Output":"//' -e 's/"$$//' | tr -d '\n' | sed 's/\\n/\n/g;s/\\t/\t/g' | grep 'ns/op' || true

# bench-spill records the out-of-core engine's evidence in BENCH_spill.json:
# one JSON row per run of the full SPILL_RING-process token-ring state
# space — the unbudgeted in-RAM baseline plus each SPILL_BUDGETS memory
# budget — with states/sec, peak RSS (VmHWM), bytes spilled, and the Bloom
# hit rate. The ring-9 default walks 387 million states and takes minutes;
# CI runs the ring-7 form (SPILL_RING=7 SPILL_BUDGETS=128K,1M), which also
# exercises the sharded visited set in under a second. Like the other
# BENCH files, the record survives `make clean`.
SPILL_RING ?= 9
SPILL_BUDGETS ?= 128M,256M
bench-spill:
	$(GO) run ./cmd/dcbench -spill $(SPILL_RING) -spill-budgets $(SPILL_BUDGETS) > BENCH_spill.json
	@cat BENCH_spill.json

# bench-slice records the cone-of-influence evidence in BENCH_slice.json:
# one JSON row per composed benchmark system (the SLICE_RING-machine watched
# token ring, the paired memory-access systems), each checked once
# full-width and once through the slicing pre-pass, with state counts, both
# wall times, and the speedup. Verdict equality is asserted in-bench; a
# divergence fails the run. Like the other BENCH files, the record survives
# `make clean`.
SLICE_RING ?= 7
bench-slice:
	$(GO) run ./cmd/dcbench -slice $(SLICE_RING) > BENCH_slice.json
	@cat BENCH_slice.json

# bench-incr records the incremental re-verification evidence in
# BENCH_incr.json: one JSON row per scripted edit of the INCR_RING-process
# token ring (watchdog-guard tweak, ring-guard tweak, assignment change,
# action add/remove), each racing the incremental pipeline — revision diff,
# in-place CSR graph repair, verdict preservation — against a from-scratch
# rebuild. Verdict equality is asserted in-bench; a divergence fails the
# run. Like the other BENCH files, the record survives `make clean`.
INCR_RING ?= 7
bench-incr:
	$(GO) run ./cmd/dcbench -incr $(INCR_RING) > BENCH_incr.json
	@cat BENCH_incr.json

# profile regenerates the heaviest experiment with pprof instrumentation and
# drops cpu.pprof/mem.pprof in the working tree for `go tool pprof`.
profile:
	$(GO) run ./cmd/dcbench -cpuprofile cpu.pprof -memprofile mem.pprof E4 E9 > /dev/null
	@echo "wrote cpu.pprof and mem.pprof; inspect with: $(GO) tool pprof cpu.pprof"

# BENCH_*.json are recorded evidence, not build products; clean leaves them.
clean:
	rm -f dctl dcbench dcvet dccodes cpu.pprof mem.pprof
