// Example memaccess walks through the paper's running example end to end:
// the intolerant memory access p (Section 3.3), the fail-safe pf (Figure 1),
// the nonmasking pn (Figure 2) and the masking pm (Figure 3), checking each
// program's tolerance class and the theorem instance that explains it.
package main

import (
	"fmt"
	"os"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/memaccess"
	"detcorr/internal/state"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "memaccess:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := memaccess.New(2)
	if err != nil {
		return err
	}
	fmt.Println("== The intolerant program p (Section 3.3) ==")
	fmt.Printf("p refines SPEC_mem from S: %v\n", verdict(sys.Spec.CheckRefinesFrom(sys.Intolerant, sys.S)))
	viol, _ := sys.Spec.Violates(sys.Intolerant, state.True)
	fmt.Printf("p violates SPEC_mem from true (arbitrary reads): %v\n", viol)

	fmt.Println("\n== Figure 1: fail-safe pf ==")
	fmt.Println(fault.CheckFailSafe(sys.FailSafe, sys.PageFaultWitness, sys.Spec, sys.S))
	fmt.Println(fault.CheckMasking(sys.FailSafe, sys.PageFaultWitness, sys.Spec, sys.S))
	d := core.Detector{Name: "pf1", D: sys.FailSafe, Z: sys.Z1, X: sys.X1, U: sys.U1}
	fmt.Printf("Z1 detects X1 in pf from U1: %v\n", verdict(d.Check()))
	fmt.Printf("pf is a fail-safe page-fault-tolerant detector: %v\n",
		verdict(d.CheckFTolerant(sys.PageFaultWitness, fault.FailSafe)))
	thm := core.Theorem3_6(sys.Intolerant, sys.FailSafe, sys.Spec, sys.PageFaultWitness, sys.S, sys.S)
	fmt.Println(thm)

	fmt.Println("\n== Figure 2: nonmasking pn ==")
	fmt.Println(fault.CheckNonmasking(sys.Nonmasking, sys.PageFaultBase, sys.Spec, sys.S, sys.S))
	fmt.Println(fault.CheckFailSafe(sys.Nonmasking, sys.PageFaultBase, sys.Spec, sys.S))
	c := core.Corrector{Name: "pn1", C: sys.Nonmasking, Z: sys.X1, X: sys.X1, U: sys.X1}
	fmt.Printf("X1 corrects X1 in pn from X1: %v\n", verdict(c.Check()))
	fmt.Println(core.Theorem4_3(sys.Intolerant, sys.Nonmasking, sys.Spec, sys.PageFaultBase, sys.S, sys.S))

	fmt.Println("\n== Figure 3: masking pm ==")
	fmt.Println(fault.CheckMasking(sys.Masking, sys.PageFaultWitness, sys.Spec, sys.S))
	thm55 := core.Theorem5_5(sys.Nonmasking, sys.Masking, sys.Spec, sys.PageFaultWitness, sys.S, sys.S)
	fmt.Println(thm55)
	for _, det := range thm55.Detectors {
		fmt.Printf("  contained detector: %s\n", det)
	}
	for _, corr := range thm55.Correctors {
		fmt.Printf("  contained corrector: %s\n", corr)
	}
	return nil
}

func verdict(err error) string {
	if err == nil {
		return "HOLDS"
	}
	return "FAILS: " + err.Error()
}
