// Example tokenring shows self-stabilization as a corrector: Dijkstra's
// K-state ring is checked as 'Legitimate corrects Legitimate', its
// worst-case convergence distances are computed, and a corrupted execution
// is traced to a legitimate state.
package main

import (
	"fmt"
	"os"

	"detcorr/internal/fault"
	"detcorr/internal/runtime"
	"detcorr/internal/state"
	"detcorr/internal/tokenring"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tokenring:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := tokenring.New(4, 4)
	if err != nil {
		return err
	}
	fmt.Printf("== %s ==\n", sys.Ring.Name())
	fmt.Printf("'Legitimate corrects Legitimate' from true: %v\n", verdict(sys.AsCorrector().Check()))
	rep := fault.CheckNonmasking(sys.Ring, sys.Corruption, sys.Spec, state.True, sys.Legitimate)
	fmt.Println(rep)

	hist, err := sys.ConvergenceSteps()
	if err != nil {
		return err
	}
	fmt.Println("\nWorst-case convergence distance histogram (states per distance):")
	for d, count := range hist {
		fmt.Printf("  %2d steps: %d states\n", d, count)
	}

	fmt.Println("\nTrace from a corrupted state (seed 3):")
	start, err := state.FromMap(sys.Schema, map[string]int{"x.0": 3, "x.1": 1, "x.2": 2, "x.3": 0})
	if err != nil {
		return err
	}
	eng, err := runtime.New(sys.Ring, runtime.Config{Seed: 3, MaxSteps: 40, KeepTrace: true})
	if err != nil {
		return err
	}
	res, err := eng.Run(start)
	if err != nil {
		return err
	}
	for i, s := range res.Trace {
		mark := ""
		if sys.Legitimate.Holds(s) {
			mark = "  <- legitimate"
		}
		fmt.Printf("  %2d %s tokens=%d%s\n", i, s, sys.TokenCount(s), mark)
		if mark != "" {
			break
		}
	}
	return nil
}

func verdict(err error) string {
	if err == nil {
		return "HOLDS"
	}
	return "FAILS: " + err.Error()
}
