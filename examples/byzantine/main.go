// Example byzantine checks the Section 6.2 construction for n = 4, f = 1 —
// intolerant IB, fail-safe IB+DB, masking IB+DB+CB — and then runs the
// general n ≥ 3f+1 case as Lamport's OM(f) over the message-passing
// simulation, including a demonstration that the 3f+1 bound is tight.
package main

import (
	"fmt"
	"os"

	"detcorr/internal/byzagree"
	"detcorr/internal/core"
	"detcorr/internal/dist"
	"detcorr/internal/fault"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "byzantine:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := byzagree.New()
	if err != nil {
		return err
	}
	fmt.Println("== Model checking, n = 4, f = 1 (Section 6.2) ==")
	fmt.Println(fault.CheckFailSafe(sys.Intolerant, sys.Faults, sys.Spec, sys.S))
	fmt.Println(fault.CheckFailSafe(sys.FailSafe, sys.Faults, sys.Spec, sys.ST))
	fmt.Println(fault.CheckMasking(sys.FailSafe, sys.Faults, sys.Spec, sys.ST))
	fmt.Println(fault.CheckMasking(sys.Masking, sys.Faults, sys.Spec, sys.ST))

	fmt.Println("\n== Components contained in the masking program ==")
	for j := 1; j <= byzagree.NumNonGenerals; j++ {
		d := core.Detector{D: sys.Masking, Z: byzagree.WitnessOf(j), X: byzagree.DetectionOf(j), U: sys.ST}
		c := core.Corrector{C: sys.Masking, Z: byzagree.WitnessOf(j), X: byzagree.DetectionOf(j), U: sys.ST}
		fmt.Printf("DB.%d masking tolerant detector: %v\n", j,
			verdict(d.CheckFTolerant(sys.Faults, fault.Masking)))
		fmt.Printf("CB.%d nonmasking tolerant corrector: %v\n", j,
			verdict(c.CheckFTolerant(sys.FaultsExcluding(j), fault.Nonmasking)))
	}

	fmt.Println("\n== General case: OM(f) over the message-passing simulation ==")
	for _, tc := range []struct {
		n, f int
		byz  map[int]bool
	}{
		{4, 1, map[int]bool{0: true}},
		{4, 1, map[int]bool{2: true}},
		{7, 2, map[int]bool{0: true, 5: true}},
	} {
		agree := 0
		const seeds = 40
		var msgs int
		for seed := int64(0); seed < seeds; seed++ {
			res, err := dist.RunOM(tc.n, tc.f, 1, tc.byz, dist.Options{Seed: seed})
			if err != nil {
				return err
			}
			if _, ok := res.HonestAgree(tc.byz); ok {
				agree++
			}
			msgs += res.Stats.Sent
		}
		fmt.Printf("OM(%d) n=%d byz=%v: agreement %d/%d seeds, avg %d messages\n",
			tc.f, tc.n, mapKeys(tc.byz), agree, seeds, msgs/seeds)
	}

	fmt.Println("\n== The 3f+1 bound is tight: n = 3, f = 1 ==")
	byz := map[int]bool{2: true}
	for seed := int64(0); seed < 200; seed++ {
		res, err := dist.RunOM(3, 1, 1, byz, dist.Options{Seed: seed})
		if err != nil {
			return err
		}
		if d, ok := res.HonestAgree(byz); !ok || d != 1 {
			fmt.Printf("seed %d: honest lieutenant decided %v (commander sent 1) — interactive consistency violated\n",
				seed, res.Decisions[1])
			return nil
		}
	}
	fmt.Println("no violation found in 200 seeds (unexpected)")
	return nil
}

func verdict(err error) string {
	if err == nil {
		return "HOLDS"
	}
	return "FAILS: " + err.Error()
}

func mapKeys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
