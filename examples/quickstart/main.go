// Quickstart: define a tiny fault-intolerant program, a fault class and a
// specification; synthesize detector and corrector components for it; check
// each tolerance class; and run a seeded fault-injection simulation.
//
// The program is a climber that raises x to its maximum; faults knock x
// down; the specification forbids ever moving *below* the recorded floor
// (safety) and requires eventually reaching the top (liveness).
package main

import (
	"fmt"
	"os"

	"detcorr/internal/core"
	"detcorr/internal/fault"
	"detcorr/internal/guarded"
	"detcorr/internal/runtime"
	"detcorr/internal/spec"
	"detcorr/internal/state"
)

const max = 6

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. The state space: a single counter x ∈ 0..max.
	sch, err := state.NewSchema(state.IntVar("x", max+1))
	if err != nil {
		return err
	}

	// 2. The fault-intolerant program: blindly jump to the top.
	jump := guarded.Det("jump",
		state.Pred("x<max", func(s state.State) bool { return s.GetName("x") < max }),
		func(s state.State) state.State { return s.WithName("x", max) },
	)
	p, err := guarded.NewProgram("climber", sch, jump)
	if err != nil {
		return err
	}

	// 3. The fault class: knock the counter down by one.
	knock := fault.NewClass("knock-down", guarded.Det("down",
		state.Pred("x>0", func(s state.State) bool { return s.GetName("x") > 0 }),
		func(s state.State) state.State { return s.WithName("x", s.GetName("x")-1) },
	))

	// 4. The specification: never step from the top to anything but the
	// top (safety), eventually at the top (liveness).
	top := state.Pred("x=max", func(s state.State) bool { return s.GetName("x") == max })
	prob := spec.Problem{
		Name: "stay-high",
		Safety: spec.NeverStep("no program step leaves the top", func(from, to state.State) bool {
			return from.GetName("x") == max && to.GetName("x") < max
		}),
		Live: []spec.LeadsTo{{Name: "reach the top", P: state.True, Q: top}},
	}

	// 5. Check: the intolerant program is already masking tolerant here —
	// faults are excluded from the safety obligation only when the spec
	// says so; ours forbids *any* top-leaving step, so faults break it and
	// the program is only nonmasking.
	fmt.Println(fault.CheckFailSafe(p, knock, prob, top))
	fmt.Println(fault.CheckNonmasking(p, knock, prob, top, top))

	// 6. Components, explicitly: the climb is a corrector for the top
	// predicate ('top corrects top' — closure and convergence).
	c := core.Corrector{Name: "climb", C: p, Z: top, X: top, U: state.True}
	if err := c.Check(); err != nil {
		return fmt.Errorf("corrector check: %w", err)
	}
	fmt.Println("corrector 'top corrects top' in climber from true: HOLDS")
	if err := c.CheckFTolerant(knock, fault.Nonmasking); err != nil {
		return fmt.Errorf("tolerant corrector check: %w", err)
	}
	fmt.Println("corrector is nonmasking knock-down-tolerant: HOLDS")

	// 7. Synthesis: derive the weakest detection predicate of the jump
	// action for the safety specification (Theorem 3.3) and print it over
	// the state space.
	sf := core.WeakestDetectionPredicate(p, 0, prob.FailSafeSpec())
	fmt.Print("weakest detection predicate of 'jump': safe at x = ")
	for x := 0; x <= max; x++ {
		if sf.Holds(state.MustState(sch, x)) {
			fmt.Print(x, " ")
		}
	}
	fmt.Println()

	// 8. Simulate with fault injection and an online convergence monitor.
	mon := &runtime.ConvergenceMonitor{Goal: top}
	eng, err := runtime.New(p, runtime.Config{
		Seed: 42, MaxSteps: 100, Faults: knock, FaultBudget: 5,
	}, mon)
	if err != nil {
		return err
	}
	res, err := eng.Run(state.MustState(sch, 0))
	if err != nil {
		return err
	}
	fmt.Printf("simulation: %d steps, %d faults injected, %d recoveries (max %d steps), violations: %d\n",
		res.Steps, res.FaultsInjected, len(mon.RecoverySteps), mon.MaxRecovery(), len(res.Violations))
	return nil
}
