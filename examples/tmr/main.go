// Example tmr builds the Section 6.1 triple-modular-redundancy program by
// composing the intolerant copier IR with the detector DR (fail-safe) and
// the corrector CR (masking), then exercises it with seeded fault-injection
// campaigns.
package main

import (
	"fmt"
	"os"

	"detcorr/internal/fault"
	"detcorr/internal/runtime"
	"detcorr/internal/state"
	"detcorr/internal/tmr"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tmr:", err)
		os.Exit(1)
	}
}

func run() error {
	sys, err := tmr.New(2)
	if err != nil {
		return err
	}
	fmt.Println("== Model checking (Section 6.1) ==")
	fmt.Println(fault.CheckFailSafe(sys.Intolerant, sys.Faults, sys.Spec, sys.S))
	fmt.Println(fault.CheckFailSafe(sys.FailSafe, sys.Faults, sys.Spec, sys.S))
	fmt.Println(fault.CheckMasking(sys.FailSafe, sys.Faults, sys.Spec, sys.S))
	fmt.Println(fault.CheckMasking(sys.Masking, sys.Faults, sys.Spec, sys.S))

	fmt.Println("\n== Fault-injection campaigns (500 seeded runs each) ==")
	initial := func(int) state.State {
		s, _ := state.FromMap(sys.Schema, map[string]int{"x": 1, "y": 1, "z": 1, "uncor": 1})
		return s
	}
	cfg := runtime.Config{Seed: 99, MaxSteps: 100, Faults: sys.Faults, FaultBudget: 1, FaultProbability: 0.5}

	res, err := runtime.Campaign{
		Program: sys.Masking,
		Config:  cfg,
		Initial: initial,
		Monitors: func(int) []runtime.Monitor {
			return []runtime.Monitor{
				runtime.NewSafetyMonitor(sys.Spec.Safety),
				&runtime.EventuallyMonitor{Goal: sys.OutCorrect},
			}
		},
		Runs: 500,
	}.Execute()
	if err != nil {
		return err
	}
	fmt.Printf("TMR (masking): %d runs, %d faults, %d violating runs, mean %.1f steps\n",
		res.Runs, res.TotalFaults, res.ViolationRuns, res.MeanSteps())

	blocked := 0
	resFS, err := runtime.Campaign{
		Program: sys.FailSafe,
		Config:  cfg,
		Initial: initial,
		Monitors: func(int) []runtime.Monitor {
			return []runtime.Monitor{runtime.NewSafetyMonitor(sys.Spec.Safety)}
		},
		Runs: 500,
	}.Execute()
	if err != nil {
		return err
	}
	// Count runs blocked without producing output by replaying finals.
	for seed := int64(0); seed < 500; seed++ {
		c := cfg
		c.Seed = cfg.Seed + seed
		eng, err := runtime.New(sys.FailSafe, c)
		if err != nil {
			return err
		}
		out, err := eng.Run(initial(0))
		if err != nil {
			return err
		}
		if out.Final.GetName("out") == 0 {
			blocked++
		}
	}
	fmt.Printf("DR;IR (fail-safe): %d runs, %d faults, %d safety violations, %d runs blocked without output\n",
		resFS.Runs, resFS.TotalFaults, resFS.ViolationRuns, blocked)
	fmt.Println("\nThe fail-safe program never outputs a corrupted value but can block;")
	fmt.Println("adding the corrector CR recovers liveness — exactly the paper's construction.")
	return nil
}
