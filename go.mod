module detcorr

go 1.22
