// Package detcorr's root benchmark harness: one benchmark per experiment in
// EXPERIMENTS.md (BenchmarkE1..BenchmarkE17, regenerating the paper's
// figures and section constructions), plus micro-benchmarks for the checker
// and runtime primitives. Run with:
//
//	go test -bench=. -benchmem
package detcorr

import (
	"strings"
	"testing"

	"detcorr/internal/byzagree"
	"detcorr/internal/core"
	"detcorr/internal/dist"
	"detcorr/internal/experiments"
	"detcorr/internal/explore"
	"detcorr/internal/explore/difftest"
	"detcorr/internal/fault"
	"detcorr/internal/gcl"
	"detcorr/internal/guarded"
	"detcorr/internal/memaccess"
	"detcorr/internal/runtime"
	"detcorr/internal/state"
	"detcorr/internal/tokenring"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		for _, row := range table.Rows {
			for _, cell := range row {
				if strings.Contains(cell, "✗") {
					b.Fatalf("%s: verdict diverges from the paper: %v", id, row)
				}
			}
		}
	}
}

func BenchmarkE1Fig1FailSafeMemory(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2Fig2NonmaskingMemory(b *testing.B)  { benchExperiment(b, "E2") }
func BenchmarkE3Fig3MaskingMemory(b *testing.B)     { benchExperiment(b, "E3") }
func BenchmarkE4TMR(b *testing.B)                   { benchExperiment(b, "E4") }
func BenchmarkE5ByzantineAgreement(b *testing.B)    { benchExperiment(b, "E5") }
func BenchmarkE6DetectorTheorems(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7CorrectorTheorems(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8MaskingTheorems(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9TokenRing(b *testing.B)             { benchExperiment(b, "E9") }
func BenchmarkE10Synthesis(b *testing.B)            { benchExperiment(b, "E10") }
func BenchmarkE11StateMachine(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12Simulation(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE13Ablation(b *testing.B)             { benchExperiment(b, "E13") }
func BenchmarkE14TerminationDetection(b *testing.B) { benchExperiment(b, "E14") }
func BenchmarkE15MutualExclusion(b *testing.B)      { benchExperiment(b, "E15") }
func BenchmarkE16Multitolerance(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17TreeMaintenance(b *testing.B)      { benchExperiment(b, "E17") }
func BenchmarkE18LeaderElection(b *testing.B)       { benchExperiment(b, "E18") }

// --- micro-benchmarks for the library primitives ---

func BenchmarkSpanComputation(b *testing.B) {
	sys := byzagree.MustNew()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		span, err := fault.ComputeSpan(sys.Masking, sys.Faults, sys.ST)
		if err != nil {
			b.Fatal(err)
		}
		if span.Size == 0 {
			b.Fatal("empty span")
		}
	}
}

func BenchmarkMaskingCheckByzantine(b *testing.B) {
	sys := byzagree.MustNew()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := fault.CheckMasking(sys.Masking, sys.Faults, sys.Spec, sys.ST); !rep.OK() {
			b.Fatal(rep.Err)
		}
	}
}

func BenchmarkDetectorCheck(b *testing.B) {
	sys := memaccess.MustNew(2)
	d := core.Detector{D: sys.FailSafe, Z: sys.Z1, X: sys.X1, U: sys.U1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := d.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrectorCheck(b *testing.B) {
	sys := tokenring.MustNew(4, 4)
	c := sys.AsCorrector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFairCycleDetection(b *testing.B) {
	sys := tokenring.MustNew(5, 5)
	g, err := explore.Build(sys.Ring, state.True, explore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ill := g.SetOf(state.Not(sys.Legitimate))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if comp := g.FairCycle(ill); comp != nil {
			b.Fatal("ring must not have a fair illegitimate cycle")
		}
	}
}

func BenchmarkGraphBuild(b *testing.B) {
	sys := tokenring.MustNew(5, 5) // 3125 states
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := explore.Build(sys.Ring, state.True, explore.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if g.NumNodes() != 3125 {
			b.Fatal("unexpected node count")
		}
	}
}

// --- parallel exploration benchmarks ---
//
// Seq/Par pairs measure the same Build at Parallelism 1 and at all CPUs;
// the graphs are identical by the engine's determinism contract, so the
// pairs differ only in wall-clock. EXPERIMENTS.md records measured ratios.

// parWorkers is the worker count the Par benchmarks use: every CPU, but at
// least two so the parallel engine is actually exercised (and its overhead
// measured) even on a single-core machine.
func parWorkers() int {
	if n := explore.AutoParallelism(); n > 2 {
		return n
	}
	return 2
}

func benchBuild(b *testing.B, prog *guarded.Program, workers, wantNodes int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		g, err := explore.Build(prog, state.True, explore.Options{Parallelism: workers})
		if err != nil {
			b.Fatal(err)
		}
		if g.NumNodes() != wantNodes {
			b.Fatalf("unexpected node count %d (want %d)", g.NumNodes(), wantNodes)
		}
	}
}

func BenchmarkBuildRing7Seq(b *testing.B) {
	benchBuild(b, tokenring.MustNew(7, 7).Ring, 1, 823543)
}

func BenchmarkBuildRing7Par(b *testing.B) {
	benchBuild(b, tokenring.MustNew(7, 7).Ring, parWorkers(), 823543)
}

func BenchmarkBuildByzMaskingSeq(b *testing.B) {
	sys := byzagree.MustNew()
	g, err := explore.Build(sys.Masking, state.True, explore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchBuild(b, sys.Masking, 1, g.NumNodes())
}

func BenchmarkBuildByzMaskingPar(b *testing.B) {
	sys := byzagree.MustNew()
	g, err := explore.Build(sys.Masking, state.True, explore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	benchBuild(b, sys.Masking, parWorkers(), g.NumNodes())
}

// benchExperimentParallel reruns a whole experiment with the process-wide
// exploration default raised, the way dcbench -j does.
func benchExperimentParallel(b *testing.B, id string) {
	b.Helper()
	prev := explore.SetDefaultParallelism(parWorkers())
	defer explore.SetDefaultParallelism(prev)
	benchExperiment(b, id)
}

func BenchmarkE5ByzantineAgreementPar(b *testing.B) { benchExperimentParallel(b, "E5") }
func BenchmarkE9TokenRingPar(b *testing.B)          { benchExperimentParallel(b, "E9") }
func BenchmarkE13AblationPar(b *testing.B)          { benchExperimentParallel(b, "E13") }

func BenchmarkSimulationRun(b *testing.B) {
	sys := memaccess.MustNew(2)
	initial, err := state.FromMap(sys.WitnessSchema, map[string]int{"present": 1, "val": 1})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := runtime.New(sys.Masking, runtime.Config{
		Seed: 1, MaxSteps: 200, Faults: sys.PageFaultWitness, FaultBudget: 2,
	}, runtime.NewSafetyMonitor(sys.Spec.Safety))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(initial)
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK() {
			b.Fatal("masking run violated safety")
		}
	}
}

func BenchmarkGCLCompile(b *testing.B) {
	const src = `
program bench
var present : bool
var val     : 0..1
var data    : enum(bot, v0, v1)
var z1      : bool
pred S :: present
action restore :: !present      -> present := true
action detect  :: present & !z1 -> z1 := true
action read0   :: z1 & val == 0 -> data := v0
action read1   :: z1 & val == 1 -> data := v1
fault pageout  :: present & !z1 -> present := false
`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gcl.ParseAndCompile(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOMProtocol(b *testing.B) {
	byz := map[int]bool{0: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dist.RunOM(7, 2, 1, byz, dist.Options{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := res.HonestAgree(byz); !ok {
			b.Fatal("agreement violated")
		}
	}
}

func BenchmarkWeakestDetectionPredicate(b *testing.B) {
	sys := memaccess.MustNew(4)
	sspec := sys.Spec.FailSafeSpec()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf := core.WeakestDetectionPredicate(sys.Intolerant, 0, sspec)
		if sf.Eval == nil {
			b.Fatal("nil predicate")
		}
	}
}

// --- graph reuse and streaming-scan benchmarks ---
//
// CachedReuse/UncachedCheck pairs measure the same tolerance verdict with
// the process-wide graph cache warm and with it dropped before every
// iteration; the ratio is what the memoized exploration layer buys a
// checker pipeline that asks repeated questions about one system.

func BenchmarkRing7CachedReuse(b *testing.B) {
	c := tokenring.MustNew(7, 7).AsCorrector()
	if err := c.Check(); err != nil { // warm the cache and the per-graph memos
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRing7UncachedCheck(b *testing.B) {
	c := tokenring.MustNew(7, 7).AsCorrector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		explore.ResetCache()
		if err := c.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanEarlyExit measures a failing counterexample hunt on the
// streaming scanner: it stops at the first illegitimate state it visits,
// long before the 823543-state space is enumerated, with no CSR assembly.
// BenchmarkScanFullSweep is the bound: the same scan forced to visit
// everything, still allocation-light compared to a Build.
func BenchmarkScanEarlyExit(b *testing.B) {
	sys := tokenring.MustNew(7, 7)
	bad := state.Not(sys.Legitimate)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var witness state.State
		stats, err := explore.Scan(sys.Ring, state.True, explore.ScanOptions{}, explore.Scanner{
			Visit: func(s state.State) bool {
				if bad.Holds(s) {
					witness = sys.Ring.Schema().StateAt(s.Index())
					return false
				}
				return true
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if !stats.Stopped || witness.IsZero() {
			b.Fatal("hunt must stop at an illegitimate state")
		}
	}
}

func BenchmarkScanFullSweep(b *testing.B) {
	sys := tokenring.MustNew(7, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := explore.Scan(sys.Ring, state.True, explore.ScanOptions{}, explore.Scanner{})
		if err != nil {
			b.Fatal(err)
		}
		if stats.States != 823543 {
			b.Fatalf("unexpected state count %d", stats.States)
		}
	}
}

// --- kernel microbenchmarks ---
//
// Step is the exploration hot loop: one call expands one state into its
// successor indices on a reusable scratch. The native variant runs compiled
// bytecode (zero allocations steady-state); the adapter variant strips the
// bytecode and routes through the guard/statement closures, measuring what
// the fallback path costs.

func benchKernelStep(b *testing.B, prog *guarded.Program) {
	b.Helper()
	k := guarded.Compile(prog)
	sc := k.NewScratch()
	n, ok := prog.Schema().NumStates()
	if !ok {
		b.Fatal("schema not indexable")
	}
	buf := make([]uint64, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = sc.Step(uint64(i)%n, buf[:0])
	}
}

func BenchmarkKernelStepRing7Native(b *testing.B) {
	benchKernelStep(b, tokenring.MustNew(7, 7).Ring)
}

func BenchmarkKernelStepRing7Adapter(b *testing.B) {
	benchKernelStep(b, difftest.StripCompiled(tokenring.MustNew(7, 7).Ring))
}

func BenchmarkKernelStepByzMasking(b *testing.B) {
	benchKernelStep(b, byzagree.MustNew().Masking)
}
